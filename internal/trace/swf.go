// Package trace reads and writes workloads in the Standard Workload Format
// (SWF) of the Parallel Workloads Archive — the format the Curie trace the
// paper replays is published in — and synthesizes Curie-like workload
// intervals with the statistical features Section VII-B reports: an
// overloaded submission queue, a large majority of small short jobs, a tiny
// fraction of huge jobs, and walltime requests that overestimate runtimes
// by four orders of magnitude.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/job"
)

// swf field indices (0-based) of the 18-column Standard Workload Format.
const (
	swfJobID = iota
	swfSubmit
	swfWait
	swfRunTime
	swfAllocProcs
	swfAvgCPU
	swfUsedMem
	swfReqProcs
	swfReqTime
	swfReqMem
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPreceding
	swfThinkTime
	swfFields
)

// ReadSWF parses an SWF stream into jobs. Header/comment lines start with
// ';'. Jobs with unknown (-1) runtimes or processor counts are skipped, as
// the paper's replay does. The requested time falls back to the runtime
// when absent. Submit times are kept as-is (seconds).
func ReadSWF(r io.Reader) ([]*job.Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []*job.Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < swfThinkTime+1 && len(fields) < 5 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want at least 5", line, len(fields))
		}
		get := func(i int) (int64, error) {
			if i >= len(fields) {
				return -1, nil
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("trace: line %d field %d: %v", line, i+1, err)
			}
			return int64(v), nil
		}
		id, err := get(swfJobID)
		if err != nil {
			return nil, err
		}
		submit, err := get(swfSubmit)
		if err != nil {
			return nil, err
		}
		run, err := get(swfRunTime)
		if err != nil {
			return nil, err
		}
		procs, err := get(swfAllocProcs)
		if err != nil {
			return nil, err
		}
		reqProcs, err := get(swfReqProcs)
		if err != nil {
			return nil, err
		}
		reqTime, err := get(swfReqTime)
		if err != nil {
			return nil, err
		}
		user, err := get(swfUserID)
		if err != nil {
			return nil, err
		}

		if procs <= 0 {
			procs = reqProcs
		}
		if run < 0 || procs <= 0 {
			continue // incomplete record, mirroring the replay filter
		}
		if reqTime < run {
			reqTime = run
		}
		if submit < 0 {
			submit = 0
		}
		out = append(out, &job.Job{
			ID:       job.ID(id),
			User:     "user" + strconv.FormatInt(user, 10),
			Cores:    int(procs),
			Submit:   submit,
			Runtime:  run,
			Walltime: reqTime,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Submit != out[j].Submit {
			return out[i].Submit < out[j].Submit
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// WriteSWF serializes jobs as SWF with a minimal header. Unknown fields
// are written as -1 per the SWF convention.
func WriteSWF(w io.Writer, jobs []*job.Job, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", l); err != nil {
				return err
			}
		}
	}
	for _, j := range jobs {
		user := int64(-1)
		if n, err := strconv.ParseInt(strings.TrimPrefix(j.User, "user"), 10, 64); err == nil {
			user = n
		}
		// job submit wait run procs avgcpu mem reqprocs reqtime reqmem
		// status uid gid exe queue partition preceding think
		if _, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Cores, j.Cores, j.Walltime, user); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Stats summarizes a workload the way Section VII-B characterizes the
// Curie trace.
type Stats struct {
	Jobs            int
	TotalCoreSec    int64   // sum cores*runtime
	SmallShort      float64 // fraction with <512 cores and <2 min runtime
	Huge            float64 // fraction with cores*runtime > 80640*3600
	MedianOverEst   float64 // median walltime/runtime (runtime > 0 only)
	MeanOverEst     float64 // mean walltime/runtime
	MaxCores        int
	HorizonSec      int64 // last submit time
	BacklogAtuZero  int   // jobs submitted at t=0 (initial queue)
	DistinctUsers   int
	ZeroRuntimeJobs int
}

// Summarize computes workload statistics. hugeCoreSec is the core-seconds
// threshold classifying a job as "huge" (the paper: more than the whole
// cluster for one hour, i.e. 80640*3600 for Curie).
func Summarize(jobs []*job.Job, hugeCoreSec int64) Stats {
	var s Stats
	s.Jobs = len(jobs)
	users := map[string]bool{}
	var ratios []float64
	var sumRatio float64
	for _, j := range jobs {
		cs := int64(j.Cores) * j.Runtime
		s.TotalCoreSec += cs
		if j.Cores < 512 && j.Runtime < 120 {
			s.SmallShort++
		}
		if cs > hugeCoreSec {
			s.Huge++
		}
		if j.Runtime > 0 {
			r := float64(j.Walltime) / float64(j.Runtime)
			ratios = append(ratios, r)
			sumRatio += r
		} else {
			s.ZeroRuntimeJobs++
		}
		if j.Cores > s.MaxCores {
			s.MaxCores = j.Cores
		}
		if j.Submit > s.HorizonSec {
			s.HorizonSec = j.Submit
		}
		if j.Submit == 0 {
			s.BacklogAtuZero++
		}
		users[j.User] = true
	}
	if s.Jobs > 0 {
		s.SmallShort /= float64(s.Jobs)
		s.Huge /= float64(s.Jobs)
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		s.MedianOverEst = ratios[len(ratios)/2]
		s.MeanOverEst = sumRatio / float64(len(ratios))
	}
	s.DistinctUsers = len(users)
	return s
}
