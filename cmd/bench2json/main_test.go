package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkSweep/serial-8         	       1	938212345 ns/op	        14.0 configs	         1.000 speedup	 1202345 B/op	    8132 allocs/op
BenchmarkSweep/workers4-8       	       1	301298765 ns/op	        14.0 configs	         3.113 speedup	 1219876 B/op	    8190 allocs/op
PASS
ok  	repro	2.531s
`
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || rep.CPU != "Test CPU @ 2.00GHz" {
		t.Errorf("header parsed wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSweep/serial-8" || b.Runs != 1 {
		t.Errorf("benchmark identity wrong: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 938212345, "configs": 14, "speedup": 1,
		"B/op": 1202345, "allocs/op": 8132,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if rep.Benchmarks[1].Metrics["speedup"] != 3.113 {
		t.Errorf("second speedup = %v", rep.Benchmarks[1].Metrics["speedup"])
	}
}

func TestParseRejectsCorruptLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX nope 12 ns/op\n")); err == nil {
		t.Error("bad run count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX 1 abc ns/op\n")); err == nil {
		t.Error("bad metric accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSweep/serial", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkSweep/max", Metrics: map[string]float64{"ns/op": 500}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 100}},
	}}
	current := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSweep/serial", Metrics: map[string]float64{"ns/op": 1150}}, // +15%: ok
		{Name: "BenchmarkSweep/max", Metrics: map[string]float64{"ns/op": 650}},     // +30%: regression
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 9999}},          // not in baseline: skipped
	}}
	regs := Compare(baseline, current, 0.20)
	if len(regs) != 1 {
		t.Fatalf("Compare found %d regressions, want 1: %v", len(regs), regs)
	}
	if !strings.Contains(regs[0], "BenchmarkSweep/max") {
		t.Errorf("regression names the wrong benchmark: %s", regs[0])
	}
}

func TestCompareAtExactGateBoundary(t *testing.T) {
	baseline := Report{Benchmarks: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"ns/op": 1000}},
	}}
	current := Report{Benchmarks: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"ns/op": 1200}},
	}}
	// Exactly +20% is within the gate (strictly-greater fails).
	if regs := Compare(baseline, current, 0.20); len(regs) != 0 {
		t.Errorf("exact-boundary growth flagged: %v", regs)
	}
}

func TestCompareStripsProcsSuffix(t *testing.T) {
	baseline := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSweep/serial", Metrics: map[string]float64{"ns/op": 1000}},
	}}
	current := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSweep/serial-8", Metrics: map[string]float64{"ns/op": 5000}},
	}}
	if regs := Compare(baseline, current, 0.20); len(regs) != 1 {
		t.Errorf("suffixed name did not match its baseline: %v", regs)
	}
	// A trailing -N that is part of the name (not a procs suffix) still
	// strips only digits; non-digit suffixes are kept verbatim.
	if got := stripProcs("BenchmarkX/max"); got != "BenchmarkX/max" {
		t.Errorf("stripProcs mangled %q", got)
	}
	if got := stripProcs("BenchmarkX-16"); got != "BenchmarkX" {
		t.Errorf("stripProcs(-16) = %q", got)
	}
}
