package service_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// scrapeMetrics GETs a /metrics endpoint and returns the exposition.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the v0.0.4 exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue sums every sample of one family (all label sets) in an
// exposition. Returns -1 when the family has no samples at all.
func metricValue(body, family string) float64 {
	sum, found := 0.0, false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		// Exact family only: the next byte must open labels or
		// whitespace, not extend the name (simd_runs vs simd_runs_queued).
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sum += v
		found = true
	}
	if !found {
		return -1
	}
	return sum
}

// TestDaemonMetricsUnderLoad drives a daemon through a submission, a
// dedupe and a scrape, then checks the exposition is promlint-clean and
// that the instruments actually moved: HTTP route histograms, scheduler
// wait, engine counters sampled from the hot path, cache-tier hits.
func TestDaemonMetricsUnderLoad(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	v, _, err := c.Submit(ctx, fastSpec("obs-load"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Same spec again: a cache hit on some tier.
	if _, hit, err := c.Submit(ctx, fastSpec("obs-load")); err != nil || !hit {
		t.Fatalf("resubmit = hit %v err %v, want a cache hit", hit, err)
	}

	body := scrapeMetrics(t, c.Base)
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Errorf("daemon /metrics has lint problems:\n  %s", strings.Join(problems, "\n  "))
	}

	for family, min := range map[string]float64{
		"simd_http_requests_total":       1,
		"simd_sched_wait_seconds_count":  1,
		"simd_run_stage_seconds_count":   2, // at least queued+execute observed
		"simd_engine_events_total":       1,
		"simd_engine_sched_passes_total": 1,
		"simd_cache_tier_hits_total":     1,
		"simd_executions_total":          1,
		"simd_cache_hits_total":          1,
	} {
		if got := metricValue(body, family); got < min {
			t.Errorf("%s = %v, want >= %v", family, got, min)
		}
	}
	// Route labels are templated, never raw ids.
	if !strings.Contains(body, `route="/v1/runs"`) {
		t.Errorf("exposition lacks the /v1/runs route label")
	}
	if strings.Contains(body, v.ID) {
		t.Errorf("exposition leaks a raw run id (%s) into labels", v.ID)
	}
}

// TestGatewayMetricsUnderLoad checks the gateway exposition: its own
// namespace (HTTP, dispatch, membership) plus the fleet-aggregated
// snapshot, all promlint-clean.
func TestGatewayMetricsUnderLoad(t *testing.T) {
	gw, c, workers := newFleet(t, 1, service.GatewayConfig{})
	heartbeatLoop(t, gw, workers, nil) // newFleet's 200ms lease lapses mid-run under -race
	ctx := context.Background()

	v, _, err := c.Submit(ctx, fastSpec("gw-obs"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, c.Base)
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Errorf("gateway /metrics has lint problems:\n  %s", strings.Join(problems, "\n  "))
	}
	for family, min := range map[string]float64{
		"simd_gateway_http_requests_total": 1,
		"simd_gateway_members_alive":       1,
		"simd_gateway_dispatches_total":    1,
		"simd_fleet_members_alive":         1,
		"simd_fleet_runs":                  1,
		"simd_fleet_runs_done":             1,
		"simd_fleet_executions_total":      1,
	} {
		if got := metricValue(body, family); got < min {
			t.Errorf("%s = %v, want >= %v", family, got, min)
		}
	}
}

// syncBuf is a goroutine-safe log sink: watchers and handlers keep
// logging while the test reads.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDEndToEnd pins the trace thread: one client-chosen
// X-Request-ID must surface in the gateway's logs, in the worker's logs
// (carried across the dispatch hop), and in the error body of a failed
// call — the operator's grep key across the whole fleet.
func TestRequestIDEndToEnd(t *testing.T) {
	var gwLog, wLog syncBuf
	worker := service.New(service.Config{
		Workers: 1,
		Logger:  obs.NewLogger(&wLog, obs.LevelDebug),
	})
	wts := httptest.NewServer(worker.Handler())
	gw := service.NewGateway(service.GatewayConfig{
		PollInterval: 10 * time.Millisecond,
		RetryDelay:   10 * time.Millisecond,
		Logger:       obs.NewLogger(&gwLog, obs.LevelDebug),
	})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
		worker.Shutdown(ctx)
		gts.Close()
		wts.Close()
	})
	if _, err := gw.Register("w1", wts.URL); err != nil {
		t.Fatal(err)
	}

	const traceID = "e2e-trace-0042"
	c := service.NewClient(gts.URL)
	c.PollInterval = 10 * time.Millisecond
	ctx := obs.WithRequestID(context.Background(), traceID)
	v, _, err := c.Submit(ctx, fastSpec("trace-e2e"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}

	needle := "request_id=" + traceID
	if !strings.Contains(gwLog.String(), needle) {
		t.Errorf("gateway log lacks %q:\n%s", needle, gwLog.String())
	}
	if !strings.Contains(wLog.String(), needle) {
		t.Errorf("worker log lacks %q (the id did not survive the dispatch hop):\n%s", needle, wLog.String())
	}

	// A failed call echoes the id in its body, so the error a user
	// pastes into a ticket already names the trace.
	req, _ := http.NewRequest(http.MethodGet, gts.URL+"/v1/runs/g999999", nil)
	req.Header.Set(obs.RequestIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown run GET = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), fmt.Sprintf("%q: %q", "request_id", traceID)) {
		t.Errorf("error body lacks the request id: %s", body)
	}
	if resp.Header.Get(obs.RequestIDHeader) != traceID {
		t.Errorf("response header %s = %q, want %q", obs.RequestIDHeader, resp.Header.Get(obs.RequestIDHeader), traceID)
	}
}

// readSSEUntil reads an SSE stream line-by-line until the predicate
// matches a line or the deadline passes.
func readSSEUntil(t *testing.T, base, path string, timeout time.Duration, want func(line string) bool) bool {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s status = %d", path, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if want(sc.Text()) {
			return true
		}
	}
	return false
}

// TestSSEKeepaliveDaemon pins the keepalive comment frames on a
// daemon's event stream: a long-running run's stream carries ": ..."
// comments between real events, so idle proxies never reap it.
func TestSSEKeepaliveDaemon(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1, SSEKeepalive: 20 * time.Millisecond})
	ctx := context.Background()
	v, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel(ctx, v.ID)

	found := readSSEUntil(t, c.Base, "/v1/runs/"+v.ID+"/events", 5*time.Second,
		func(line string) bool { return strings.HasPrefix(line, ": keepalive") })
	if !found {
		t.Fatal("no keepalive comment frame on the daemon event stream")
	}
}

// TestSSEKeepaliveGatewayRelay pins that a worker's keepalive frames
// survive the gateway's event proxy: the relay flushes per chunk and
// never strips comment frames.
func TestSSEKeepaliveGatewayRelay(t *testing.T) {
	worker := service.New(service.Config{Workers: 1, SSEKeepalive: 20 * time.Millisecond})
	wts := httptest.NewServer(worker.Handler())
	gw := service.NewGateway(service.GatewayConfig{
		PollInterval: 10 * time.Millisecond,
		RetryDelay:   10 * time.Millisecond,
	})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
		worker.Shutdown(ctx)
		gts.Close()
		wts.Close()
	})
	if _, err := gw.Register("w1", wts.URL); err != nil {
		t.Fatal(err)
	}

	c := service.NewClient(gts.URL)
	c.PollInterval = 10 * time.Millisecond
	ctx := context.Background()
	v, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel(ctx, v.ID)

	// Wait until the run is executing on the worker — a still-queued
	// run answers events locally (and closes), not via the relay.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := c.Get(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never started (state %s)", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	found := readSSEUntil(t, gts.URL, "/v1/runs/"+v.ID+"/events", 5*time.Second,
		func(line string) bool { return strings.HasPrefix(line, ": keepalive") })
	if !found {
		t.Fatal("no keepalive comment frame relayed through the gateway event proxy")
	}
}

// TestStageTimingsOnRunView pins the per-run stage breakdown: a
// finished run's view reports queued/setup/execute/render timings.
func TestStageTimingsOnRunView(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	v, _, err := c.Submit(ctx, fastSpec("stages"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stages == nil {
		t.Fatal("finished run view has no stage timings")
	}
	if got.Stages.ExecuteMS <= 0 {
		t.Errorf("ExecuteMS = %v, want > 0", got.Stages.ExecuteMS)
	}
	if got.Stages.QueuedMS < 0 || got.Stages.SetupMS < 0 || got.Stages.RenderMS < 0 {
		t.Errorf("negative stage timing: %+v", *got.Stages)
	}
}

// TestPprofGating pins the profiler's exposure matrix: open daemons
// serve it, authed daemons 401 anonymous callers (the generic auth
// wall), 404 non-admin tenants (indistinguishable from the route not
// existing) and 200 admins.
func TestPprofGating(t *testing.T) {
	get := func(base, token, path string) int {
		req, _ := http.NewRequest(http.MethodGet, base+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	t.Run("open daemon", func(t *testing.T) {
		_, c := newTestServer(t, service.Config{Workers: 1})
		if got := get(c.Base, "", "/debug/pprof/heap"); got != 200 {
			t.Errorf("open daemon heap profile = %d, want 200", got)
		}
	})
	t.Run("authed daemon", func(t *testing.T) {
		_, base := newAuthServer(t)
		if got := get(base, "", "/debug/pprof/heap"); got != 401 {
			t.Errorf("anonymous heap profile = %d, want 401", got)
		}
		if got := get(base, "tok-alice", "/debug/pprof/heap"); got != 404 {
			t.Errorf("non-admin heap profile = %d, want 404", got)
		}
		if got := get(base, "tok-ops", "/debug/pprof/heap"); got != 200 {
			t.Errorf("admin heap profile = %d, want 200", got)
		}
	})
	t.Run("authed gateway", func(t *testing.T) {
		auth, err := service.NewAuth([]service.TenantConfig{
			{Name: "alice", Token: "tok-alice"},
			{Name: "ops", Token: "tok-ops", Admin: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		gw := service.NewGateway(service.GatewayConfig{Auth: auth})
		ts := httptest.NewServer(gw.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			gw.Shutdown(ctx)
			ts.Close()
		})
		if got := get(ts.URL, "", "/debug/pprof/heap"); got != 401 {
			t.Errorf("anonymous gateway heap profile = %d, want 401", got)
		}
		if got := get(ts.URL, "tok-alice", "/debug/pprof/heap"); got != 404 {
			t.Errorf("non-admin gateway heap profile = %d, want 404", got)
		}
		if got := get(ts.URL, "tok-ops", "/debug/pprof/heap"); got != 200 {
			t.Errorf("admin gateway heap profile = %d, want 200", got)
		}
		// /metrics stays open on an authed gateway, like /healthz.
		if got := get(ts.URL, "", "/metrics"); got != 200 {
			t.Errorf("anonymous gateway /metrics = %d, want 200", got)
		}
	})
}
