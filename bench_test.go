// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Figures 2-8 and the Section VII-C claims), plus ablations
// of the design choices DESIGN.md calls out and micro-benchmarks of the
// hot paths. Replayed figures run on a 4-rack (360-node) slice so a full
// `go test -bench=.` stays in laptop territory; pass the full machine via
// the cmd/expfig tool instead when absolute fidelity matters.
//
// Benchmarks report normalized work/energy through b.ReportMetric so the
// paper-shape comparisons of EXPERIMENTS.md regenerate from the bench
// output alone.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simengine"
	"repro/internal/trace"
)

const benchRacks = 4 // 360 nodes, 5760 cores

// --- Figures 2-5: model tables --------------------------------------

func BenchmarkFig2PowerBonus(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = figures.Fig2()
	}
	if len(out) == 0 {
		b.Fatal("empty artifact")
	}
}

func BenchmarkFig3PowerTimeTradeoff(b *testing.B) {
	prof := power.CurieProfile()
	for i := 0; i < b.N; i++ {
		pts := apps.Figure3Points(prof)
		if len(pts) != 32 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

func BenchmarkFig4PowerTable(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = figures.Fig4()
	}
	if len(out) == 0 {
		b.Fatal("empty artifact")
	}
}

func BenchmarkFig5RhoTable(b *testing.B) {
	prof := power.CurieProfile()
	for i := 0; i < b.N; i++ {
		for _, row := range apps.Figure5Rows() {
			_ = row.Rho(prof)
		}
	}
}

// --- Figures 6-8 and claims: replayed experiments -------------------

func runScenario(b *testing.B, s replay.Scenario) replay.Result {
	b.Helper()
	var r replay.Result
	for i := 0; i < b.N; i++ {
		r = replay.Run(s)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(r.Summary.NormWork, "normWork")
	b.ReportMetric(r.Summary.NormEnergy, "normEnergy")
	return r
}

func BenchmarkFig6Mix24h(b *testing.B) {
	r := runScenario(b, replay.Fig6Scenario(benchRacks))
	if len(r.Samples) == 0 {
		b.Fatal("no samples")
	}
}

func BenchmarkFig7aShutBigjob(b *testing.B) {
	runScenario(b, replay.Fig7aScenario(benchRacks))
}

func BenchmarkFig7bDvfsSmalljob(b *testing.B) {
	runScenario(b, replay.Fig7bScenario(benchRacks))
}

func BenchmarkFig8PolicySweep(b *testing.B) {
	scens := replay.Fig8Scenarios(benchRacks)
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll(scens, 0)
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkClaims24h(b *testing.B) {
	scens := replay.Claims24hScenarios(benchRacks)
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll(scens, 0)
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// --- Ablations -------------------------------------------------------

func BenchmarkAblationGroupedShutdown(b *testing.B) {
	scens := replay.AblationGroupingScenarios(benchRacks)
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll(scens, 0)
	}
	if results[0].Err != nil || results[1].Err != nil {
		b.Fatal("ablation run failed")
	}
	// grouped[0] vs scattered[1]: report the bonus harvested.
	b.ReportMetric(float64(results[0].Plan.PlannedSaving-results[1].Plan.PlannedSaving), "bonusWattsGain")
}

func BenchmarkAblationMixFloor(b *testing.B) {
	scens := replay.AblationMixFloorScenarios(benchRacks)
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll(scens, 0)
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(results[0].Summary.NormEnergy, "mixEnergy")
	b.ReportMetric(results[1].Summary.NormEnergy, "fullRangeEnergy")
}

func BenchmarkAblationDynamicDVFS(b *testing.B) {
	scens := replay.AblationDynamicDVFSScenarios(benchRacks)
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll(scens, 0)
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(float64(results[1].Summary.Rescales), "rescales")
	b.ReportMetric(results[0].Summary.NormWork, "staticWork")
	b.ReportMetric(results[1].Summary.NormWork, "dynamicWork")
}

func BenchmarkAblationMeasuredPower(b *testing.B) {
	s := replay.Fig7aScenario(benchRacks)
	s.MeasuredNoise = 0.03
	runScenario(b, s)
}

func BenchmarkAblationCompactPlacement(b *testing.B) {
	s := replay.Fig7bScenario(benchRacks)
	// Compact, topology-aware allocation (Section IV-A's network
	// criterion) versus the default first-fit packing.
	var results []replay.Result
	for i := 0; i < b.N; i++ {
		results = replay.RunAll([]replay.Scenario{s, func() replay.Scenario {
			c := s
			c.Compact = true
			c.Name += "/compact"
			return c
		}()}, 0)
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(results[0].Summary.NormWork, "firstFitWork")
	b.ReportMetric(results[1].Summary.NormWork, "compactWork")
}

func BenchmarkAblationKillOnOverrun(b *testing.B) {
	s := replay.Fig7aScenario(benchRacks)
	s.KillOnOverrun = true
	r := runScenario(b, s)
	b.ReportMetric(float64(r.Summary.JobsKilled), "killed")
}

func BenchmarkAblationReservationLead(b *testing.B) {
	s := replay.Fig7aScenario(benchRacks)
	s.ReservationLead = 1800
	runScenario(b, s)
}

func BenchmarkAblationBackfillDepth(b *testing.B) {
	s := replay.Fig6Scenario(benchRacks)
	s.BackfillDepth = 10 // starved backfill, the paper's observed pathology
	runScenario(b, s)
}

// --- Parallel sweep engine -------------------------------------------

// sweepBenchGrid is the experiment-engine benchmark grid: 2 workloads x
// (uncapped baseline + 2 caps x 3 policies) = 14 configurations on a
// 2-rack machine — big enough that the worker pool has real work to
// balance, small enough for `go test -bench Sweep` to stay quick.
func sweepBenchGrid() experiment.Grid {
	return experiment.Grid{
		Name: "bench",
		Workloads: []trace.Config{
			{Kind: trace.SmallJob, Seed: 1002},
			{Kind: trace.MedianJob, Seed: 1001},
		},
		CapFractions: []float64{0, 0.6, 0.4},
		Policies:     []core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix},
		Base:         replay.Scenario{ScaleRacks: 2},
	}
}

// BenchmarkSweep measures the parallel sweep engine: the serial
// baseline against 4-worker and GOMAXPROCS pools over the same
// 14-configuration grid. Every variant must aggregate to the identical
// fingerprint — the engine's determinism contract — and the reported
// speedup metric is the wall-clock ratio the worker pool achieves
// (bounded by the machine's core count; ~1.0 on a single-CPU runner).
func BenchmarkSweep(b *testing.B) {
	grid := sweepBenchGrid()
	scens := grid.Scenarios()
	if len(scens) < 12 {
		b.Fatalf("grid has %d configurations, want >= 12", len(scens))
	}
	refFP := ""
	var serialWall time.Duration
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers4", 4},
		{"workersMax", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var t experiment.Table
			for i := 0; i < b.N; i++ {
				t = experiment.Runner{Workers: bc.workers}.Run(grid.Name, scens)
			}
			if errs := t.Errs(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			if fp := t.Fingerprint(); refFP == "" {
				refFP = fp
			} else if fp != refFP {
				b.Fatalf("aggregated metrics differ from serial reference at %d workers", t.Workers)
			}
			b.ReportMetric(float64(len(t.Rows)), "configs")
			// Speedup is the whole-sweep wall-clock ratio against the
			// serial leg — NOT Table.Speedup(), whose summed per-cell
			// times include runnable-but-descheduled waits and so credit
			// an oversubscribed pool with concurrency the hardware never
			// delivered (a 1-CPU runner would report ~4x for workers4
			// while its wall clock showed none).
			if bc.workers == 1 {
				serialWall = t.Elapsed
			}
			if serialWall > 0 && t.Elapsed > 0 {
				b.ReportMetric(float64(serialWall)/float64(t.Elapsed), "speedup")
			}
		})
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------

func BenchmarkClusterPowerTransition(b *testing.B) {
	c := cluster.NewCurie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cluster.NodeID(i % c.Nodes())
		if err := c.Occupy(id, 1, dvfs.F2700); err != nil {
			b.Fatal(err)
		}
		if err := c.Vacate(id, 1, 0); err != nil {
			b.Fatal(err)
		}
		_ = c.Power()
	}
}

func BenchmarkOfflinePlanFullCurie(b *testing.B) {
	c := cluster.NewCurie()
	pm := core.CuriePolicyModel(core.PolicyShut)
	budget := power.CapFraction(0.4, c.MaxPower())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := core.PlanOffline(c, pm, budget, true, nil)
		if len(plan.OffNodes) == 0 {
			b.Fatal("empty plan")
		}
	}
}

func BenchmarkOnlineSelectFreq(b *testing.B) {
	c := cluster.NewCurie()
	pm := core.CuriePolicyModel(core.PolicyDvfs)
	nodes := []cluster.NodeID{0, 1, 2, 3}
	budget := power.CapWatts(c.IdlePower() + 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.SelectFreqUnderCap(c, pm, nodes, func(dvfs.Freq) power.Cap {
			return budget
		}); !ok {
			b.Fatal("selection failed")
		}
	}
}

func BenchmarkAllocateFullCurie(b *testing.B) {
	c := cluster.NewCurie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sched.Allocate(c, 512, nil) == nil {
			b.Fatal("allocation failed")
		}
	}
}

func BenchmarkEventEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simengine.New(0)
		for t := int64(0); t < 1000; t++ {
			if _, err := e.At(t, func(simengine.Time) {}); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Run(-1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStep measures the event queue's steady-state cycle —
// the At/Cancel/Step trio every simulated event pays. A pool of
// self-rescheduling handlers keeps the heap at constant depth, and each
// iteration also schedules-and-cancels one event so tombstone purging
// is part of the measured cost.
func BenchmarkEngineStep(b *testing.B) {
	e := simengine.New(0)
	const pool = 512
	var tick func(now simengine.Time)
	tick = func(now simengine.Time) {
		if _, err := e.After(pool, tick); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < pool; i++ {
		if _, err := e.At(int64(i), tick); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := e.After(pool/2, tick)
		if err != nil {
			b.Fatal(err)
		}
		e.Cancel(id)
		if !e.Step() {
			b.Fatal("engine drained")
		}
	}
}

// BenchmarkSchedulePass measures the controller's scheduling hot path
// end to end: one capped SHUT scenario on the bench slice, whose cost
// is dominated by EASY-backfill passes (allocation probes, the shadow
// window, power projections) rather than event dispatch.
func BenchmarkSchedulePass(b *testing.B) {
	s := replay.Scenario{
		Name:        "bench-pass",
		Workload:    trace.Config{Kind: trace.MedianJob, Seed: 3},
		Policy:      core.PolicyShut,
		CapFraction: 0.5,
		ScaleRacks:  benchRacks,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := replay.Run(s)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if res.Summary.JobsCompleted == 0 {
			b.Fatal("scenario completed no jobs")
		}
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.Config{Kind: trace.MedianJob, Seed: 1, Cores: 5760}
	for i := 0; i < b.N; i++ {
		jobs, err := trace.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(jobs) == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkSWFStream measures the streaming trace pipeline: scanning a
// ~10k-job SWF trace through window + rescale transforms, the per-job
// cost that bounds how fast million-job archive traces ingest.
func BenchmarkSWFStream(b *testing.B) {
	jobs, err := trace.Generate(trace.Config{Kind: trace.MedianJob, Seed: 1, Cores: 80640})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSWF(&buf, jobs, "bench trace"); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	dur := trace.MedianJob.Duration()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.ScaleCores(trace.Window(trace.NewScanner(bytes.NewReader(raw)), 0, dur), 80640, 5760)
		n := 0
		for {
			j, err := src.Next()
			if err != nil {
				b.Fatal(err)
			}
			if j == nil {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("empty stream")
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

func BenchmarkModelSolve(b *testing.B) {
	p := model.CurieParams(5040)
	for i := 0; i < b.N; i++ {
		if _, err := model.SolveFraction(p, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Service layer ----------------------------------------------------

// BenchmarkServiceSubmit measures the simd submission round trip
// through the real HTTP API: "cold" submits distinct specs (every
// iteration executes the engine), "cachehit" resubmits one already
// finished spec (every iteration is served from the spec-hash result
// cache). The gap between the two is the daemon's heavy-traffic story.
func BenchmarkServiceSubmit(b *testing.B) {
	baseSpec := func() sim.RunSpec {
		return sim.RunSpec{
			Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 1002, DurationSec: 3600},
			Racks:        1,
			Policies:     []string{"SHUT"},
			CapFractions: []float64{0.6},
		}
	}
	boot := func(b *testing.B) (*service.Server, *service.Client, func()) {
		srv := service.New(service.Config{Workers: 1, MaxRuns: 1 << 20})
		ts := httptest.NewServer(srv.Handler())
		c := service.NewClient(ts.URL)
		c.PollInterval = 2 * time.Millisecond
		return srv, c, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			ts.Close()
		}
	}

	b.Run("cold", func(b *testing.B) {
		_, c, stop := boot(b)
		defer stop()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := baseSpec()
			spec.Name = fmt.Sprintf("cold-%d", i) // distinct hash: forces execution
			v, hit, err := c.Submit(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			if hit {
				b.Fatal("cold submission hit the cache")
			}
			if _, err := c.Wait(ctx, v.ID, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cachehit", func(b *testing.B) {
		srv, c, stop := boot(b)
		defer stop()
		ctx := context.Background()
		v, _, err := c.Submit(ctx, baseSpec())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Wait(ctx, v.ID, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, hit, err := c.Submit(ctx, baseSpec())
			if err != nil {
				b.Fatal(err)
			}
			if !hit || got.ID != v.ID {
				b.Fatalf("resubmission missed the cache (hit=%v id=%s)", hit, got.ID)
			}
		}
		b.StopTimer()
		if st := srv.Stats(); st.Executions != 1 {
			b.Fatalf("cache-hit loop executed %d times", st.Executions)
		}
	})
}
