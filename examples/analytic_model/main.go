// Analytic model walkthrough: Section III of the paper decides, from five
// numbers, whether a power-capped cluster should switch nodes off, slow
// them down, or both. This example reproduces that analysis on the Curie
// constants and prints the per-application verdicts of Figure 5.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/model"
	"repro/internal/power"
)

func main() {
	p := model.CurieParams(5040)
	fmt.Printf("Curie: N=%d, Pmax=%.0f W, Pmin=%.0f W, Poff=%.0f W, degmin=%.2f\n",
		p.N, p.PMax, p.PMin, p.POff, p.DegMin)
	fmt.Printf("DVFS alone cannot reach caps below lambda_min = Pmin/Pmax = %.3f\n\n", p.LambdaMin())

	fmt.Println("How much work survives each powercap (W in node-units, N = 5040):")
	fmt.Printf("%8s %12s %10s %10s %10s  %s\n", "lambda", "cap", "Noff", "Ndvfs", "work", "case")
	for _, lambda := range []float64{0.9, 0.8, 0.7, 0.6, 0.54, 0.5, 0.4, 0.3, 0.2, 0.1} {
		pl, err := model.SolveFraction(p, lambda)
		if err != nil {
			fmt.Printf("%8.2f  %v\n", lambda, err)
			continue
		}
		fmt.Printf("%8.2f %12s %10d %10d %10.1f  %v\n",
			lambda, power.Watts(lambda*p.MaxPower()), pl.IntNOff, pl.IntNDvfs, pl.Work, pl.Case)
	}

	// The Figure 5 question: which mechanism wins per application?
	prof := power.CurieProfile()
	fmt.Println("\nPer-application verdicts (Figure 5, published rho criterion):")
	for _, app := range apps.Figure5Rows() {
		if app.Name == "NA" {
			fmt.Printf("  break-even degradation: %.2f (rho = 0)\n", app.DegMin)
			continue
		}
		fmt.Printf("  %-14s degmin=%.2f  rho=%+.3f  -> %v\n",
			app.Name, app.DegMin, app.Rho(prof), app.BestMechanism(prof))
	}

	// The discrepancy DESIGN.md documents: direct work comparison at the
	// common degradation.
	pl, err := model.SolveFraction(p, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt a 70%% cap with degmin %.2f the published rho picks %v,\n"+
		"while maximizing W directly favours %v (Woff=%.0f, Wdvfs=%.0f).\n",
		p.DegMin, pl.PaperChoice, pl.DerivedChoice, pl.WorkOff, pl.WorkDvfs)
}
