package service

import (
	"io"
	"sync"

	"repro/internal/obs"
)

// serverMetrics bundles the daemon's metric registry and every
// instrument the service layer drives. Two kinds of family live here:
//
//   - event-driven instruments (counters, histograms) incremented at
//     the point the event happens — HTTP requests, scheduler waits,
//     stage timings, engine counter deltas, cache-tier hits;
//   - stats-derived families (GaugeFunc/CounterFunc) that read the
//     most recent Stats snapshot. A scrape calls Stats() exactly once
//     (see scrape), stores it, and the closures read the copy — eleven
//     families cost one lock acquisition per scrape, not eleven.
//
// The pre-resolved vec children (passRun, memoHit, ...) exist so the
// engine-sampling observer does plain atomic adds with no per-sample
// map lookups.
type serverMetrics struct {
	reg     *obs.Registry
	httpMet *obs.HTTPMetrics

	schedWait *obs.Histogram
	runStage  *obs.HistogramVec

	engineEvents *obs.Counter
	passRun      *obs.Counter
	passSkipped  *obs.Counter
	memoHit      *obs.Counter
	memoMiss     *obs.Counter

	tierLive    *obs.Counter
	tierHot     *obs.Counter
	tierArchive *obs.Counter

	mu        sync.Mutex
	lastStats Stats
}

// schedWaitBuckets spans queue waits from "free worker" (sub-ms) to a
// deeply backed-up daemon (minutes).
var schedWaitBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:     reg,
		httpMet: obs.NewHTTPMetrics(reg, "simd"),
		schedWait: reg.Histogram("simd_sched_wait_seconds",
			"Queue wait from submission to execution start.", schedWaitBuckets),
		runStage: reg.HistogramVec("simd_run_stage_seconds",
			"Per-run pipeline stage durations.", nil, "stage"),
	}
	engine := reg.CounterVec("simd_engine_sched_passes_total",
		"Scheduling passes, by whether the probe cycle ran or the pass memo skipped it.", "result")
	m.passRun = engine.With("run")
	m.passSkipped = engine.With("skipped")
	memo := reg.CounterVec("simd_engine_projection_memo_total",
		"Power projection memo lookups during scheduling passes.", "result")
	m.memoHit = memo.With("hit")
	m.memoMiss = memo.With("miss")
	m.engineEvents = reg.Counter("simd_engine_events_total",
		"Simulation engine events fired across all runs.")
	tiers := reg.CounterVec("simd_cache_tier_hits_total",
		"Spec-hash cache hits, by the tier that answered.", "tier")
	m.tierLive = tiers.With("live")
	m.tierHot = tiers.With("hot")
	m.tierArchive = tiers.With("archive")

	reg.GaugeFunc("simd_sched_queue_depth",
		"Run ids queued on the scheduler, waiting for a worker.",
		func() float64 { return float64(s.sched.Queued()) })

	// The stats-derived set keeps the family names the pre-registry
	// /metrics exposed (dashboards and tests pin them); the *_total
	// families gain their proper counter TYPE.
	st := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(m.stats()) }
	}
	reg.GaugeFunc("simd_runs", "Process-visible runs (live plus hot tier).",
		st(func(v Stats) float64 { return float64(v.Runs) }))
	reg.GaugeFunc("simd_runs_queued", "Runs waiting for a worker.",
		st(func(v Stats) float64 { return float64(v.Queued) }))
	reg.GaugeFunc("simd_runs_running", "Runs executing now.",
		st(func(v Stats) float64 { return float64(v.Running) }))
	reg.CounterFunc("simd_executions_total", "Fresh executions since boot (cache misses).",
		st(func(v Stats) float64 { return float64(v.Executions) }))
	reg.CounterFunc("simd_cache_hits_total", "Submissions deduped into existing runs.",
		st(func(v Stats) float64 { return float64(v.CacheHits) }))
	reg.GaugeFunc("simd_workers", "Run worker pool size.",
		st(func(v Stats) float64 { return float64(v.Workers) }))
	reg.GaugeFunc("simd_archived", "Records in the durable archive.",
		st(func(v Stats) float64 { return float64(v.Archived) }))
	reg.CounterFunc("simd_archive_errors_total", "Failed archive writes since boot.",
		st(func(v Stats) float64 { return float64(v.ArchiveErrors) }))
	reg.GaugeFunc("simd_twins_live", "Twin sessions currently running.",
		st(func(v Stats) float64 { return float64(v.TwinsLive) }))
	reg.CounterFunc("simd_twins_total", "Twin sessions started and retained since boot.",
		st(func(v Stats) float64 { return float64(v.TwinsTotal) }))
	reg.GaugeFunc("simd_draining", "1 while the daemon refuses new work.",
		st(func(v Stats) float64 {
			if v.Draining {
				return 1
			}
			return 0
		}))
	return m
}

// scrape writes the full exposition, refreshing the stats snapshot the
// derived families read. One Stats() call serves the whole scrape.
func (m *serverMetrics) scrape(w io.Writer, st Stats) error {
	m.mu.Lock()
	m.lastStats = st
	m.mu.Unlock()
	return m.reg.WritePrometheus(w)
}

func (m *serverMetrics) stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastStats
}

// observeStages feeds the terminal run's stage timings into the stage
// histogram (milliseconds on the record, seconds on the wire).
func (m *serverMetrics) observeStages(st *StageTimings) {
	if st == nil {
		return
	}
	for _, s := range []struct {
		name string
		ms   float64
	}{
		{"queued", st.QueuedMS},
		{"setup", st.SetupMS},
		{"execute", st.ExecuteMS},
		{"render", st.RenderMS},
		{"archive", st.ArchiveMS},
	} {
		if s.ms > 0 {
			m.runStage.With(s.name).Observe(s.ms / 1000)
		}
	}
}
