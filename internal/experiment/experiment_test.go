package experiment

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

// testGrid is small enough for unit tests (one rack, one replayed hour)
// but still crosses every axis: 2 workloads x (baseline + 2 caps x 2
// policies) = 10 cells.
func testGrid() Grid {
	return Grid{
		Name: "unit",
		Workloads: []trace.Config{
			{Kind: trace.SmallJob, Seed: 1002, DurationSec: 3600},
			{Kind: trace.MedianJob, Seed: 1001, DurationSec: 3600},
		},
		CapFractions: []float64{0, 0.6, 0.4},
		Policies:     []core.Policy{core.PolicyShut, core.PolicyMix},
		Base:         replay.Scenario{ScaleRacks: 1},
	}
}

func TestGridExpansion(t *testing.T) {
	g := testGrid()
	scens := g.Scenarios()
	if len(scens) != 10 {
		t.Fatalf("cells = %d, want 10", len(scens))
	}
	if g.Size() != len(scens) {
		t.Fatalf("Size() = %d != %d", g.Size(), len(scens))
	}
	// First cell per workload is the collapsed uncapped baseline.
	if scens[0].Name != "smalljob/100%/None" || scens[0].Policy != core.PolicyNone {
		t.Fatalf("baseline cell = %q/%v", scens[0].Name, scens[0].Policy)
	}
	if scens[1].Name != "smalljob/60%/SHUT" || scens[2].Name != "smalljob/60%/MIX" {
		t.Fatalf("cap cells = %q, %q", scens[1].Name, scens[2].Name)
	}
	if scens[5].Name != "medianjob/100%/None" || scens[5].Workload.Kind != trace.MedianJob {
		t.Fatalf("second workload starts at wrong cell: %q", scens[5].Name)
	}
	for _, s := range scens {
		if s.ScaleRacks != 1 {
			t.Fatalf("base option lost in cell %q", s.Name)
		}
	}
	// Multiple out-of-range fractions still collapse to one baseline.
	dup := g
	dup.CapFractions = []float64{0, 1.0, 2.5, 0.4}
	for _, s := range dup.Scenarios() {
		if !s.Capped() && s.Workload.Kind == trace.SmallJob && s.Name != "smalljob/100%/None" {
			t.Fatalf("unexpected extra baseline %q", s.Name)
		}
	}
	if n := len(dup.Scenarios()); n != 2*(1+2) {
		t.Fatalf("dedup grid cells = %d, want 6", n)
	}
	// Seed replicates of one kind get disambiguated names.
	rep := g
	rep.Workloads = []trace.Config{
		{Kind: trace.SmallJob, Seed: 1, DurationSec: 3600},
		{Kind: trace.SmallJob, Seed: 2, DurationSec: 3600},
	}
	repScens := rep.Scenarios()
	if repScens[0].Name != "smalljob#1/100%/None" || repScens[5].Name != "smalljob#2/100%/None" {
		t.Fatalf("replicate names = %q, %q", repScens[0].Name, repScens[5].Name)
	}
}

// TestSweepDeterministicAcrossWorkers is the engine's core contract:
// the aggregated table is identical at any worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	ref := Run(g, 1)
	if errs := ref.Errs(); len(errs) != 0 {
		t.Fatalf("serial sweep errors: %v", errs)
	}
	refFP := ref.Fingerprint()
	for _, workers := range []int{2, 3, 16} {
		got := Run(g, workers)
		if errs := got.Errs(); len(errs) != 0 {
			t.Fatalf("%d-worker sweep errors: %v", workers, errs)
		}
		if fp := got.Fingerprint(); fp != refFP {
			t.Fatalf("fingerprint differs at %d workers:\n serial  %s\n workers %s", workers, refFP, fp)
		}
		for i, r := range got.Rows {
			if r.Index != i {
				t.Fatalf("row %d landed at index %d", i, r.Index)
			}
		}
	}
}

func TestTableOrderAndAccounting(t *testing.T) {
	g := testGrid()
	scens := g.Scenarios()
	tab := Run(g, 4)
	if tab.Workers != 4 {
		t.Fatalf("workers = %d", tab.Workers)
	}
	if len(tab.Rows) != len(scens) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(scens))
	}
	for i, r := range tab.Rows {
		if r.Scenario.Name != scens[i].Name {
			t.Fatalf("row %d is %q, want %q", i, r.Scenario.Name, scens[i].Name)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("row %d has no elapsed time", i)
		}
	}
	if tab.SerialCost() <= 0 || tab.Elapsed <= 0 {
		t.Fatalf("missing sweep accounting: serial=%v wall=%v", tab.SerialCost(), tab.Elapsed)
	}
	if tab.Speedup() <= 0 {
		t.Fatalf("speedup = %v", tab.Speedup())
	}
	out := tab.ASCII(40)
	for _, want := range []string{"unit: 10 configurations", "smalljob/60%/SHUT", "Energy (normalized)", "== workload medianjob =="} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerProgress(t *testing.T) {
	g := testGrid()
	scens := g.Scenarios()
	var (
		mu    sync.Mutex
		calls int
		last  int
	)
	tab := Runner{Workers: 3, OnResult: func(done, total int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != len(scens) {
			t.Errorf("total = %d, want %d", total, len(scens))
		}
		if done != calls {
			t.Errorf("done = %d on call %d (callback not serialized)", done, calls)
		}
		last = done
	}}.Run("progress", scens)
	if calls != len(scens) || last != len(scens) {
		t.Fatalf("OnResult calls = %d, last done = %d, want %d", calls, last, len(scens))
	}
	if len(tab.Rows) != len(scens) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

// TestWorkerClamp: worker counts beyond the cell count or below 1 must
// still produce a full, ordered table.
func TestWorkerClamp(t *testing.T) {
	g := testGrid()
	g.Workloads = g.Workloads[:1]
	g.CapFractions = []float64{0.4}
	g.Policies = []core.Policy{core.PolicyShut}
	for _, workers := range []int{-1, 0, 1, 99} {
		tab := Run(g, workers)
		if len(tab.Rows) != 1 || tab.Rows[0].Err != nil {
			t.Fatalf("workers=%d: rows=%d err=%v", workers, len(tab.Rows), tab.Rows[0].Err)
		}
		if tab.Workers < 1 || tab.Workers > 1 {
			t.Fatalf("workers=%d clamped to %d, want 1", workers, tab.Workers)
		}
	}
}
