// Package storetest is the cross-backend conformance suite for
// service.RunStore implementations. Both shipped backends — the
// in-memory hot tier and the filesystem archive — run the same suite,
// and any future backend (sqlite, badger, ...) must pass it before the
// daemon will treat it as a persistence tier: the suite pins exactly
// the semantics internal/service relies on (one record per spec hash,
// Seq-ordered listing with cursor pagination, oldest-first eviction
// that never evicts the record just put, concurrent-put convergence).
//
// Usage, from a backend's own test file:
//
//	func TestMyStoreConformance(t *testing.T) {
//		storetest.Run(t, func(t *testing.T, opt storetest.Options) service.RunStore {
//			return newMyStore(t, opt.MaxRecords, opt.OnEvict)
//		})
//	}
package storetest

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// Options carry the bounds a conformance subtest wants the store under
// test constructed with.
type Options struct {
	// MaxRecords caps the store (0 = unbounded).
	MaxRecords int
	// MaxAge expires records older than this (0 = keep forever). Only
	// exercised by RunAgeExpiry; backends without age support skip
	// that suite.
	MaxAge time.Duration
	// OnEvict, when non-nil, must observe every evicted or replaced
	// record.
	OnEvict func(service.Record)
}

// Factory builds a fresh, empty store for one subtest. The factory owns
// cleanup (use t.Cleanup); the suite still calls Close and expects it
// to succeed.
type Factory func(t *testing.T, opt Options) service.RunStore

// Run exercises the full conformance suite against the factory's
// stores.
func Run(t *testing.T, factory Factory) {
	t.Run("PutGetRoundtrip", func(t *testing.T) { testRoundtrip(t, factory) })
	t.Run("UpsertByHash", func(t *testing.T) { testUpsert(t, factory) })
	t.Run("ListOrderAndFilters", func(t *testing.T) { testListFilters(t, factory) })
	t.Run("Pagination", func(t *testing.T) { testPagination(t, factory) })
	t.Run("Eviction", func(t *testing.T) { testEviction(t, factory) })
	t.Run("ConcurrentPutOneHash", func(t *testing.T) { testConcurrent(t, factory) })
	t.Run("DeleteLenMaxSeq", func(t *testing.T) { testDeleteLenMaxSeq(t, factory) })
}

// RunAgeExpiry exercises the optional age-bound contract: records
// whose Finished time (Submitted when never finished) is older than
// Options.MaxAge are expired by later puts, reported to OnEvict, and
// the record a Put just wrote is never its own victim. Backends
// without age support don't call this.
func RunAgeExpiry(t *testing.T, factory Factory) {
	t.Run("ExpiredByLaterPut", func(t *testing.T) {
		var evicted []string
		st := factory(t, Options{MaxAge: 30 * 24 * time.Hour,
			OnEvict: func(rec service.Record) { evicted = append(evicted, rec.ID) }})

		// The suite's base timestamps (January 2026) are far past any
		// reasonable MaxAge; stale carries them as-is.
		stale := record(t, "age-stale", 0)
		mustPut(t, st, stale)
		if _, ok, _ := st.Get(stale.ID); !ok {
			t.Fatal("record expired by its own put")
		}

		// A record that never finished ages from Submitted.
		unfinished := record(t, "age-unfinished", 1)
		unfinished.State = service.StateFailed
		unfinished.Finished = time.Time{}
		mustPut(t, st, unfinished)

		fresh := record(t, "age-fresh", 2)
		fresh.Submitted = time.Now()
		fresh.Started = fresh.Submitted
		fresh.Finished = fresh.Submitted
		mustPut(t, st, fresh)

		if !reflect.DeepEqual(evicted, []string{stale.ID, unfinished.ID}) {
			t.Errorf("evicted %v, want the stale records oldest-first", evicted)
		}
		if _, ok, _ := st.Get(stale.ID); ok {
			t.Error("expired record still resolves")
		}
		if _, ok, _ := st.Get(fresh.ID); !ok {
			t.Error("fresh record expired")
		}
		if n, _ := st.Len(); n != 1 {
			t.Errorf("Len = %d, want 1", n)
		}
	})
	t.Run("UnboundedKeepsEverything", func(t *testing.T) {
		st := factory(t, Options{})
		old := record(t, "age-forever", 0)
		mustPut(t, st, old)
		mustPut(t, st, record(t, "age-forever-2", 1))
		if n, _ := st.Len(); n != 2 {
			t.Errorf("MaxAge 0 expired records: Len = %d, want 2", n)
		}
	})
}

// spec builds a distinct valid normalized spec per name; distinct names
// hash differently, which is what gives each record its own address.
func spec(name string) sim.RunSpec {
	return sim.RunSpec{
		Name:         name,
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 42, DurationSec: 3600},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}.Normalize()
}

// SampleRecord builds a well-formed stored-run record for the named
// spec at the given sequence number — exported so backend test files
// can pin backend-specific behavior (reopen, corruption) on the same
// shape the suite uses.
func SampleRecord(t *testing.T, name string, seq int) service.Record {
	t.Helper()
	return record(t, name, seq)
}

// record builds a stored-run record for the named spec at the given
// sequence number.
func record(t *testing.T, name string, seq int) service.Record {
	t.Helper()
	sp := spec(name)
	hash, err := sim.SpecHash(sp)
	if err != nil {
		t.Fatalf("hashing spec %q: %v", name, err)
	}
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return service.Record{
		ID:         fmt.Sprintf("r%06d", seq+1),
		Seq:        seq,
		Tenant:     "tenant-a",
		SpecHash:   hash,
		Name:       sp.Name,
		Mode:       sp.Mode,
		Policies:   []string{"SHUT"},
		Kinds:      []string{"smalljob"},
		State:      service.StateDone,
		Submitted:  base.Add(time.Duration(seq) * time.Minute),
		Started:    base.Add(time.Duration(seq)*time.Minute + time.Second),
		Finished:   base.Add(time.Duration(seq)*time.Minute + 2*time.Second),
		CacheHits:  seq,
		CellsDone:  1,
		CellsTotal: 1,
		Events: []service.Event{
			{Seq: 0, Type: "queued"},
			{Seq: 1, Type: "started"},
			{Seq: 2, Type: "done", Done: 1, Total: 1},
		},
		Spec:    sp,
		Renders: map[string][]byte{"json": []byte(`{"ok":true}` + "\n")},
	}
}

func mustPut(t *testing.T, st service.RunStore, rec service.Record) {
	t.Helper()
	if err := st.Put(rec); err != nil {
		t.Fatalf("Put(%s): %v", rec.ID, err)
	}
}

func testRoundtrip(t *testing.T, factory Factory) {
	st := factory(t, Options{})
	rec := record(t, "roundtrip", 0)
	mustPut(t, st, rec)

	for _, lookup := range []struct {
		kind string
		get  func() (service.Record, bool, error)
	}{
		{"Get", func() (service.Record, bool, error) { return st.Get(rec.ID) }},
		{"ByHash", func() (service.Record, bool, error) { return st.ByHash(rec.SpecHash) }},
	} {
		got, ok, err := lookup.get()
		if err != nil || !ok {
			t.Fatalf("%s = ok:%v err:%v, want hit", lookup.kind, ok, err)
		}
		if got.ID != rec.ID || got.Seq != rec.Seq || got.SpecHash != rec.SpecHash ||
			got.Tenant != rec.Tenant || got.Name != rec.Name || got.State != rec.State ||
			got.CacheHits != rec.CacheHits {
			t.Errorf("%s metadata mismatch:\n got %+v\nwant %+v", lookup.kind, got, rec)
		}
		if !got.Submitted.Equal(rec.Submitted) || !got.Finished.Equal(rec.Finished) {
			t.Errorf("%s timestamps drifted: got %v/%v want %v/%v",
				lookup.kind, got.Submitted, got.Finished, rec.Submitted, rec.Finished)
		}
		if !reflect.DeepEqual(got.Events, rec.Events) {
			t.Errorf("%s events = %+v, want %+v", lookup.kind, got.Events, rec.Events)
		}
		if string(got.Renders["json"]) != string(rec.Renders["json"]) {
			t.Errorf("%s json render = %q, want %q", lookup.kind, got.Renders["json"], rec.Renders["json"])
		}
		if gotHash, err := sim.SpecHash(got.Spec); err != nil || gotHash != rec.SpecHash {
			t.Errorf("%s returned spec re-hashes to %.12s (err %v), want %.12s", lookup.kind, gotHash, err, rec.SpecHash)
		}
	}

	if _, ok, err := st.Get("r999999"); err != nil || ok {
		t.Errorf("Get(unknown) = ok:%v err:%v, want miss", ok, err)
	}
	if _, ok, err := st.ByHash("feedfeed"); err != nil || ok {
		t.Errorf("ByHash(unknown) = ok:%v err:%v, want miss", ok, err)
	}
	if err := st.Put(service.Record{}); err == nil {
		t.Error("Put of a record without id/hash succeeded")
	}
}

func testUpsert(t *testing.T, factory Factory) {
	var evicted []string
	st := factory(t, Options{OnEvict: func(rec service.Record) { evicted = append(evicted, rec.ID) }})

	first := record(t, "upsert", 0)
	mustPut(t, st, first)

	// Same spec hash, new run id: the replacement wins and the old id is
	// retired — the store holds at most one record per hash.
	second := record(t, "upsert", 5)
	second.CacheHits = 99
	mustPut(t, st, second)

	if n, _ := st.Len(); n != 1 {
		t.Fatalf("after upsert Len = %d, want 1", n)
	}
	got, ok, err := st.ByHash(first.SpecHash)
	if err != nil || !ok || got.ID != second.ID || got.CacheHits != 99 {
		t.Errorf("ByHash after upsert = %+v (ok:%v err:%v), want the replacement", got, ok, err)
	}
	if _, ok, _ := st.Get(first.ID); ok {
		t.Errorf("retired id %s still resolves", first.ID)
	}
	if _, ok, _ := st.Get(second.ID); !ok {
		t.Errorf("replacement id %s does not resolve", second.ID)
	}
	if len(evicted) != 1 || evicted[0] != first.ID {
		t.Errorf("onEvict saw %v, want exactly the replaced record %s", evicted, first.ID)
	}

	// Re-putting the same id (a hit-count bump) must not evict anything.
	second.CacheHits = 100
	mustPut(t, st, second)
	if len(evicted) != 1 {
		t.Errorf("same-id re-put fired onEvict: %v", evicted)
	}
	if got, _, _ := st.ByHash(first.SpecHash); got.CacheHits != 100 {
		t.Errorf("re-put did not update: cache hits = %d, want 100", got.CacheHits)
	}
}

func testListFilters(t *testing.T, factory Factory) {
	st := factory(t, Options{})
	recs := make([]service.Record, 6)
	for i := range recs {
		recs[i] = record(t, fmt.Sprintf("list-%d", i), i)
	}
	recs[1].State = service.StateFailed
	recs[2].Tenant = "tenant-b"
	recs[3].Policies = []string{"DVFS"}
	// Put out of order: listings must come back Seq-sorted regardless.
	for _, i := range []int{3, 0, 5, 1, 4, 2} {
		mustPut(t, st, recs[i])
	}

	all, next, err := st.List(service.ListFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Errorf("unlimited listing returned next cursor %q", next)
	}
	if len(all) != len(recs) {
		t.Fatalf("List returned %d records, want %d", len(all), len(recs))
	}
	for i, rec := range all {
		if rec.Seq != i {
			t.Errorf("List[%d].Seq = %d, want ascending from 0", i, rec.Seq)
		}
		if rec.Events != nil || rec.Renders != nil || rec.Telemetry != nil || rec.Report != nil {
			t.Errorf("List[%d] carries heavy payloads; listings must be metadata-only", i)
		}
	}

	cases := []struct {
		name string
		f    service.ListFilter
		want []string
	}{
		{"state", service.ListFilter{State: "failed"}, []string{recs[1].ID}},
		{"hash prefix", service.ListFilter{HashPrefix: recs[4].SpecHash[:12]}, []string{recs[4].ID}},
		{"policy fold", service.ListFilter{Policy: "dvfs"}, []string{recs[3].ID}},
		{"kind", service.ListFilter{Kind: "smalljob"}, ids(recs...)},
		{"name substring", service.ListFilter{Name: "list-2"}, []string{recs[2].ID}},
		{"tenant", service.ListFilter{Tenant: "tenant-b"}, []string{recs[2].ID}},
		{"since", service.ListFilter{Since: recs[4].Submitted}, []string{recs[4].ID, recs[5].ID}},
		{"until", service.ListFilter{Until: recs[1].Submitted}, []string{recs[0].ID, recs[1].ID}},
		{"no match", service.ListFilter{Tenant: "nobody"}, nil},
	}
	for _, tc := range cases {
		got, _, err := st.List(tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(ids(got...), tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, ids(got...), tc.want)
		}
	}
}

func ids(recs ...service.Record) []string {
	var out []string
	for _, rec := range recs {
		out = append(out, rec.ID)
	}
	return out
}

func testPagination(t *testing.T, factory Factory) {
	st := factory(t, Options{})
	const n = 7
	for i := 0; i < n; i++ {
		mustPut(t, st, record(t, fmt.Sprintf("page-%d", i), i))
	}

	// Walk the listing two records at a time; the pages must tile the
	// full Seq order with no overlap and no gap.
	var walked []int
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("cursor walk did not terminate")
		}
		page, next, err := st.List(service.ListFilter{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		if len(page) > 2 {
			t.Fatalf("page of %d records, limit 2", len(page))
		}
		for _, rec := range page {
			walked = append(walked, rec.Seq)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	for i, seq := range walked {
		if seq != i {
			t.Fatalf("cursor walk visited seqs %v, want 0..%d in order", walked, n-1)
		}
	}
	if len(walked) != n {
		t.Fatalf("cursor walk visited %d records, want %d", len(walked), n)
	}

	// The final exact-fit page must not dangle a cursor to an empty
	// page... but if a caller fabricates one past the end, the answer is
	// an empty page, not an error.
	page, next, err := st.List(service.ListFilter{Limit: 2, Cursor: "9999"})
	if err != nil || len(page) != 0 || next != "" {
		t.Errorf("cursor past end: page=%d next=%q err=%v, want empty page", len(page), next, err)
	}

	// A malformed cursor is the caller's error.
	if _, _, err := st.List(service.ListFilter{Cursor: "not-a-seq"}); err == nil {
		t.Error("malformed cursor accepted")
	}

	// Limit without cursor takes the head of the listing.
	page, next, err = st.List(service.ListFilter{Limit: 3})
	if err != nil || len(page) != 3 || next == "" {
		t.Fatalf("limit=3: page=%d next=%q err=%v", len(page), next, err)
	}
	if page[0].Seq != 0 || page[2].Seq != 2 {
		t.Errorf("first page seqs = %v, want 0..2", ids(page...))
	}
}

func testEviction(t *testing.T, factory Factory) {
	var evicted []string
	st := factory(t, Options{MaxRecords: 3, OnEvict: func(rec service.Record) { evicted = append(evicted, rec.ID) }})

	for i := 0; i < 5; i++ {
		mustPut(t, st, record(t, fmt.Sprintf("evict-%d", i), i))
		if n, _ := st.Len(); n > 3 {
			t.Fatalf("after put %d, Len = %d > cap 3", i, n)
		}
	}
	// Oldest-first: seq 0 and 1 are gone, 2..4 remain.
	if !reflect.DeepEqual(evicted, []string{"r000001", "r000002"}) {
		t.Errorf("evicted %v, want oldest-first [r000001 r000002]", evicted)
	}
	for seq := 2; seq <= 4; seq++ {
		if _, ok, _ := st.Get(fmt.Sprintf("r%06d", seq+1)); !ok {
			t.Errorf("survivor seq %d missing", seq)
		}
	}
	// The record just put is never the victim, even when it is the
	// oldest in the store.
	mustPut(t, st, record(t, "evict-late", 0))
	if _, ok, _ := st.Get("r000001"); !ok {
		t.Error("record just put was evicted by its own put")
	}
}

func testConcurrent(t *testing.T, factory Factory) {
	st := factory(t, Options{})
	rec := record(t, "concurrent", 0)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rec
			r.CacheHits = i
			errs[i] = st.Put(r)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Put %d: %v", i, err)
		}
	}
	if n, _ := st.Len(); n != 1 {
		t.Fatalf("after %d concurrent puts of one hash, Len = %d, want 1", n, n)
	}
	got, ok, err := st.ByHash(rec.SpecHash)
	if err != nil || !ok || got.ID != rec.ID {
		t.Fatalf("ByHash after concurrent puts = %+v (ok:%v err:%v)", got, ok, err)
	}
}

func testDeleteLenMaxSeq(t *testing.T, factory Factory) {
	st := factory(t, Options{})
	if max, err := st.MaxSeq(); err != nil || max != -1 {
		t.Errorf("empty MaxSeq = %d, %v; want -1", max, err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Errorf("empty Len = %d, %v", n, err)
	}

	a, b := record(t, "del-a", 3), record(t, "del-b", 8)
	mustPut(t, st, a)
	mustPut(t, st, b)
	if max, _ := st.MaxSeq(); max != 8 {
		t.Errorf("MaxSeq = %d, want 8", max)
	}

	if ok, err := st.Delete(a.ID); err != nil || !ok {
		t.Fatalf("Delete(%s) = %v, %v", a.ID, ok, err)
	}
	if ok, _ := st.Delete(a.ID); ok {
		t.Error("double delete reported a hit")
	}
	if _, ok, _ := st.Get(a.ID); ok {
		t.Error("deleted record still resolves by id")
	}
	if _, ok, _ := st.ByHash(a.SpecHash); ok {
		t.Error("deleted record still resolves by hash")
	}
	if n, _ := st.Len(); n != 1 {
		t.Errorf("Len after delete = %d, want 1", n)
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
