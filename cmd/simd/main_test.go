package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// TestServeSubmitDrain boots the daemon on an ephemeral port, submits a
// spec twice (the second must dedupe), sends itself SIGTERM and checks
// the drain exits cleanly — the CI smoke in miniature.
func TestServeSubmitDrain(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	var (
		wg     sync.WaitGroup
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run([]string{"-listen", "127.0.0.1:0", "-workers", "1"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}

	c := service.NewClient("http://" + addr)
	c.PollInterval = 20 * time.Millisecond
	ctx := context.Background()
	spec := sim.RunSpec{
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 9, DurationSec: 1800},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	v1, hit, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first submission was a cache hit")
	}
	v2, hit, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v2.ID != v1.ID {
		t.Errorf("second identical submission: hit=%v id=%s want id=%s", hit, v2.ID, v1.ID)
	}
	if _, err := c.Wait(ctx, v1.ID, nil); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("daemon exited with error: %v", runErr)
	}
	if !strings.Contains(out.String(), "1 cache hits") {
		t.Errorf("drain summary missing cache hit count:\n%s", out.String())
	}
}

// bootDaemon starts run() in a goroutine and returns the bound address
// plus a stop function that SIGTERMs the process and waits for a clean
// drain.
func bootDaemon(t *testing.T, args []string, out *bytes.Buffer) (string, func()) {
	t.Helper()
	ready := make(chan string, 1)
	var (
		wg     sync.WaitGroup
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run(args, out, ready)
	}()
	select {
	case addr := <-ready:
		return addr, func() {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			if runErr != nil {
				t.Fatalf("daemon exited with error: %v\n%s", runErr, out.String())
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
		return "", nil
	}
}

// TestRestartSurvivesArchive is the durability contract end to end: a
// daemon with -archive-dir is killed and rebooted on the same
// directory, and the reborn process must answer the identical spec as a
// cache hit under the original run id — with its telemetry still
// queryable — while fresh work gets ids the dead process never issued.
func TestRestartSurvivesArchive(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-listen", "127.0.0.1:0", "-workers", "1", "-archive-dir", dir}
	spec := sim.RunSpec{
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 11, DurationSec: 1800},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	ctx := context.Background()

	// First life: run the spec to completion, remember its identity.
	var out1 bytes.Buffer
	addr1, stop1 := bootDaemon(t, args, &out1)
	c1 := service.NewClient("http://" + addr1)
	c1.PollInterval = 20 * time.Millisecond
	v1, hit, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first-life submission was a cache hit")
	}
	if _, err := c1.Wait(ctx, v1.ID, nil); err != nil {
		t.Fatal(err)
	}
	stop1()

	// Second life, same archive directory: the identical spec is a hit
	// served from disk — same id, no re-execution.
	var out2 bytes.Buffer
	addr2, stop2 := bootDaemon(t, args, &out2)
	defer stop2()
	c2 := service.NewClient("http://" + addr2)
	c2.PollInterval = 20 * time.Millisecond
	v2, hit, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v2.ID != v1.ID || v2.State != "done" {
		t.Errorf("post-restart resubmit: hit=%v id=%s state=%s, want hit of done %s", hit, v2.ID, v2.State, v1.ID)
	}

	// Its telemetry is restored from the envelope and queryable.
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/runs/%s/metrics", addr2, v1.ID))
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Available []string `json:"available"`
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if resp.StatusCode != 200 || err != nil || len(metrics.Available) == 0 {
		t.Errorf("post-restart metrics: status=%d err=%v available=%v, want 200 with series", resp.StatusCode, err, metrics.Available)
	}

	// The report survives too.
	var report bytes.Buffer
	if err := c2.WriteReport(ctx, v1.ID, "json", sim.SinkOptions{}, &report); err != nil {
		t.Errorf("post-restart report: %v", err)
	}

	// Fresh work never reuses an id the first life issued: the sequence
	// was reseeded past the archive's high-water mark.
	fresh := spec
	fresh.Workload.Seed = 12
	v3, hit, err := c2.Submit(ctx, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if hit || v3.ID == v1.ID {
		t.Errorf("fresh spec after restart: hit=%v id=%s, want a new id (had %s)", hit, v3.ID, v1.ID)
	}
	if _, err := c2.Wait(ctx, v3.ID, nil); err != nil {
		t.Fatal(err)
	}
}
