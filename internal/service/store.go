package service

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/tsdb"
)

// Record is one completed run as the persistence layer stores it: the
// normalized spec with its content address, the lifecycle metadata and
// event log, the report rendered through every sink, and the
// downsampled telemetry snapshot. Policies and Kinds are derived from
// the spec at record-build time so list filters match without
// re-walking spec structure per request.
//
// Report is process-local: it embeds live engine state and is carried
// only by in-memory stores (the filesystem archive drops it and serves
// Renders instead). Everything else round-trips through the archive
// envelope.
type Record struct {
	ID     string
	Seq    int
	Tenant string

	SpecHash string
	Name     string
	Mode     sim.Mode
	// Policies/Kinds are the canonical policy and workload-kind names
	// the spec touches (spec-level axes plus explicit cells), sorted.
	Policies []string
	Kinds    []string

	State State
	Error string

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	CacheHits  int
	CellsDone  int
	CellsTotal int

	// Stages breaks the run's wall-clock into pipeline stages; set when
	// the run retires (nil for runs archived before stage timing
	// existed).
	Stages *StageTimings

	Events []Event
	Spec   sim.RunSpec

	// Renders maps sink names to the rendered report (nil for runs that
	// produced none).
	Renders map[string][]byte
	// Telemetry is the run's downsampled telemetry snapshot.
	Telemetry *tsdb.Snapshot

	// Report is the live report of a run completed in this process;
	// never persisted.
	Report *sim.Report
}

// light returns the record stripped to its list-view metadata — the
// form List results carry, so paging through a large archive never
// loads report payloads or telemetry.
func (r Record) light() Record {
	r.Events = nil
	r.Renders = nil
	r.Telemetry = nil
	r.Report = nil
	return r
}

// ListFilter selects and pages run records. The zero value matches
// everything from the start of the listing.
type ListFilter struct {
	// State matches the exact run state ("done", "failed", ...).
	State string
	// HashPrefix matches spec hashes by prefix.
	HashPrefix string
	// Policy matches records whose spec touches the policy (canonical
	// or any registered spelling).
	Policy string
	// Kind matches records whose spec touches the workload kind.
	Kind string
	// Name substring-matches the run name.
	Name string
	// Tenant matches the exact owning tenant.
	Tenant string
	// Since/Until bound the submission time (inclusive); zero means
	// unbounded.
	Since time.Time
	Until time.Time
	// Cursor resumes a paged listing: the opaque value a previous page
	// returned ("" starts from the beginning).
	Cursor string
	// Limit caps the page size (0 means unlimited).
	Limit int
}

// Match reports whether the record passes the filter's predicates
// (cursor and limit are paging, not matching, and are ignored here).
func (f ListFilter) Match(rec Record) bool {
	if f.State != "" && string(rec.State) != f.State {
		return false
	}
	if f.HashPrefix != "" && !strings.HasPrefix(rec.SpecHash, f.HashPrefix) {
		return false
	}
	if f.Policy != "" && !containsFold(rec.Policies, f.Policy) {
		return false
	}
	if f.Kind != "" && !containsFold(rec.Kinds, f.Kind) {
		return false
	}
	if f.Name != "" && !strings.Contains(rec.Name, f.Name) {
		return false
	}
	if f.Tenant != "" && rec.Tenant != f.Tenant {
		return false
	}
	if !f.Since.IsZero() && rec.Submitted.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && rec.Submitted.After(f.Until) {
		return false
	}
	return true
}

func containsFold(names []string, want string) bool {
	for _, n := range names {
		if strings.EqualFold(n, want) {
			return true
		}
	}
	return false
}

// ParseListFilter builds a filter from list-API query parameters:
//
//	?state=&hash=&policy=&kind=&name=&tenant=&since=&until=&cursor=&limit=
//
// since/until accept unix seconds or RFC 3339 timestamps. Malformed
// values are 400-class errors, never silently ignored predicates — a
// filter that quietly matched everything would hand a caller someone
// else's runs.
func ParseListFilter(q url.Values) (ListFilter, error) {
	f := ListFilter{
		State:      q.Get("state"),
		HashPrefix: q.Get("hash"),
		Policy:     q.Get("policy"),
		Kind:       q.Get("kind"),
		Name:       q.Get("name"),
		Tenant:     q.Get("tenant"),
		Cursor:     q.Get("cursor"),
	}
	var err error
	if f.Since, err = parseTimeParam("since", q.Get("since")); err != nil {
		return ListFilter{}, err
	}
	if f.Until, err = parseTimeParam("until", q.Get("until")); err != nil {
		return ListFilter{}, err
	}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return ListFilter{}, &Error{Status: 400, Msg: fmt.Sprintf("bad limit %q: want a non-negative integer", s)}
		}
		f.Limit = n
	}
	if f.Cursor != "" {
		if _, err := parseCursor(f.Cursor); err != nil {
			return ListFilter{}, err
		}
	}
	return f, nil
}

// parseTimeParam reads an optional time bound: unix seconds or RFC 3339.
func parseTimeParam(name, s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, &Error{Status: 400, Msg: fmt.Sprintf("bad %s %q: want unix seconds or RFC 3339", name, s)}
	}
	return t, nil
}

// parseCursor decodes a listing cursor: the sequence number of the last
// record of the previous page.
func parseCursor(cursor string) (int, error) {
	if cursor == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(cursor)
	if err != nil || n < 0 {
		return 0, &Error{Status: 400, Msg: fmt.Sprintf("bad cursor %q", cursor)}
	}
	return n, nil
}

// pageRecords applies cursor-and-limit paging to filtered records:
// records must be sorted by Seq ascending; the page starts after the
// cursor's seq and holds at most Limit records; nextCursor is empty on
// the final page. A cursor past the end yields an empty page — the
// natural "you have read everything" answer, not an error.
func pageRecords(records []Record, f ListFilter) ([]Record, string, error) {
	after, err := parseCursor(f.Cursor)
	if err != nil {
		return nil, "", err
	}
	out := make([]Record, 0, len(records))
	for _, rec := range records {
		if rec.Seq <= after {
			continue
		}
		if !f.Match(rec) {
			continue
		}
		out = append(out, rec.light())
	}
	next := ""
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
		next = strconv.Itoa(out[len(out)-1].Seq)
	}
	return out, next, nil
}

// RunStore is the persistence seam of the service: completed runs
// (their reports rendered through every sink, plus telemetry snapshots)
// are Put once terminal and served from the store from then on. Two
// implementations ship — the in-memory store the daemon always fronts
// with, and the filesystem archive that survives restarts — and any
// future backend (sqlite, badger, ...) must pass the storetest
// conformance suite, which pins these semantics:
//
//   - Put upserts by spec hash: at most one record per hash (the result
//     cache invariant); re-putting a hash replaces the prior record and
//     retires its run id.
//   - Get/ByHash return the full record; List returns metadata-only
//     records ordered by Seq with cursor pagination.
//   - A capacity bound evicts oldest records first, never the one just
//     put.
//   - Concurrent Puts of one hash are safe and leave exactly one
//     record.
//
// All implementations must be safe for concurrent use.
type RunStore interface {
	// Put stores the record, replacing any record with the same spec
	// hash.
	Put(rec Record) error
	// Get returns the record owning the run id.
	Get(id string) (Record, bool, error)
	// ByHash returns the record for the spec hash.
	ByHash(hash string) (Record, bool, error)
	// List returns the metadata-only records matching the filter in Seq
	// order, plus the cursor of the next page ("" when exhausted).
	List(f ListFilter) ([]Record, string, error)
	// Delete removes the record owning the run id, reporting whether it
	// existed.
	Delete(id string) (bool, error)
	// Len counts the stored records.
	Len() (int, error)
	// MaxSeq returns the highest stored sequence number, or -1 when
	// empty — how a rebooted daemon avoids reissuing archived run ids.
	MaxSeq() (int, error)
	// Close releases the store.
	Close() error
}

// MemStore is the in-memory RunStore: the daemon's hot tier (and the
// whole persistence layer when no archive is configured). It holds full
// records — including the process-local live Report — bounded by
// MaxRecords with oldest-first eviction, which is exactly the retention
// the pre-store daemon applied to terminal runs.
type MemStore struct {
	max     int
	onEvict func(Record)

	mu     sync.Mutex
	byID   map[string]Record
	byHash map[string]string // hash -> id
	order  []string          // ids in Seq order
}

// NewMemStore builds a memory store keeping at most max records
// (0 = unbounded). onEvict, when non-nil, observes each evicted or
// replaced record (the daemon drops the evicted run's live telemetry
// there).
func NewMemStore(max int, onEvict func(Record)) *MemStore {
	return &MemStore{
		max:     max,
		onEvict: onEvict,
		byID:    map[string]Record{},
		byHash:  map[string]string{},
	}
}

// Put stores the record, replacing any prior record of the same hash.
func (m *MemStore) Put(rec Record) error {
	if rec.ID == "" || rec.SpecHash == "" {
		return fmt.Errorf("service: record needs an id and a spec hash")
	}
	m.mu.Lock()
	var evicted []Record
	if prevID, ok := m.byHash[rec.SpecHash]; ok && prevID != rec.ID {
		if prev, ok := m.byID[prevID]; ok {
			evicted = append(evicted, prev)
		}
		m.removeLocked(prevID)
	}
	if _, ok := m.byID[rec.ID]; !ok {
		m.order = append(m.order, rec.ID)
	}
	m.byID[rec.ID] = rec
	m.byHash[rec.SpecHash] = rec.ID
	for m.max > 0 && len(m.byID) > m.max {
		oldest := m.order[0]
		if oldest == rec.ID {
			break // never evict the record just put
		}
		if prev, ok := m.byID[oldest]; ok {
			evicted = append(evicted, prev)
		}
		m.removeLocked(oldest)
	}
	m.mu.Unlock()
	if m.onEvict != nil {
		for _, e := range evicted {
			m.onEvict(e)
		}
	}
	return nil
}

// removeLocked drops one id from every index; m.mu must be held.
func (m *MemStore) removeLocked(id string) {
	rec, ok := m.byID[id]
	if !ok {
		return
	}
	delete(m.byID, id)
	if m.byHash[rec.SpecHash] == id {
		delete(m.byHash, rec.SpecHash)
	}
	for i, cur := range m.order {
		if cur == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Get returns the record owning the run id.
func (m *MemStore) Get(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.byID[id]
	return rec, ok, nil
}

// ByHash returns the record for the spec hash.
func (m *MemStore) ByHash(hash string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.byHash[hash]
	if !ok {
		return Record{}, false, nil
	}
	rec, ok := m.byID[id]
	return rec, ok, nil
}

// List returns the metadata-only records matching the filter in Seq
// order with cursor pagination.
func (m *MemStore) List(f ListFilter) ([]Record, string, error) {
	m.mu.Lock()
	records := make([]Record, 0, len(m.byID))
	for _, id := range m.order {
		records = append(records, m.byID[id])
	}
	m.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	return pageRecords(records, f)
}

// Delete removes the record owning the run id.
func (m *MemStore) Delete(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[id]; !ok {
		return false, nil
	}
	m.removeLocked(id)
	return true, nil
}

// Len counts the stored records.
func (m *MemStore) Len() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID), nil
}

// MaxSeq returns the highest stored sequence number, or -1 when empty.
func (m *MemStore) MaxSeq() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := -1
	for _, rec := range m.byID {
		if rec.Seq > max {
			max = rec.Seq
		}
	}
	return max, nil
}

// Close releases the store (a no-op for memory).
func (m *MemStore) Close() error { return nil }

// derivePolicyKinds extracts the sorted canonical policy and
// workload-kind names a normalized spec touches — the derived filter
// columns of a Record.
func derivePolicyKinds(spec sim.RunSpec) (policies, kinds []string) {
	pset, kset := map[string]bool{}, map[string]bool{}
	for _, p := range spec.Policies {
		pset[p] = true
	}
	if spec.Workload.Kind != "" {
		kset[spec.Workload.Kind] = true
	}
	for _, c := range spec.Cells {
		if c.Policy != "" {
			pset[c.Policy] = true
		}
		if c.Workload != nil && c.Workload.Kind != "" {
			kset[c.Workload.Kind] = true
		}
	}
	for p := range pset {
		policies = append(policies, p)
	}
	for k := range kset {
		kinds = append(kinds, k)
	}
	sort.Strings(policies)
	sort.Strings(kinds)
	return policies, kinds
}
