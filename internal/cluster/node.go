package cluster

import (
	"fmt"

	"repro/internal/dvfs"
)

// NodeState is the RJMS-visible power state of a node. It mirrors the
// SLURM states the paper's implementation keys watt values on: Down (node
// switched off, only the BMC powered), Idle (powered, no job) and Busy
// (allocated; the draw then depends on the CPU frequency).
type NodeState int

const (
	// StateOff means the node is switched off (SLURM "down" for the
	// purposes of the powercap code); only its BMC draws power.
	StateOff NodeState = iota
	// StateIdle means the node is powered on and runs no job.
	StateIdle
	// StateBusy means at least one job occupies cores of the node.
	StateBusy
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// node is the internal per-node record.
type node struct {
	state     NodeState
	freq      dvfs.Freq // frequency charged while busy (highest among jobs)
	usedCores int       // cores currently allocated
	reserved  bool      // captured by a switch-off reservation
}

// NodeInfo is the read-only view of one node handed to callers.
type NodeInfo struct {
	ID        NodeID
	State     NodeState
	Freq      dvfs.Freq // meaningful while Busy
	UsedCores int
	Reserved  bool // earmarked by a switch-off reservation
}
