package twin

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/invariant"
	"repro/internal/rjms"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// smallSpec is a twin small enough to drive through many epochs in a
// unit test: two one-rack members, an hour of virtual time, 900 s
// epochs, as fast as possible.
func smallSpec() Spec {
	return Spec{
		Name: "test-twin",
		Members: []MemberSpec{
			{Name: "alpha", Workload: sim.WorkloadSpec{Kind: "bursty", Seed: 11, DurationSec: 1800, LoadFactor: 0.8}, Racks: 1},
			{Name: "beta", Workload: sim.WorkloadSpec{Kind: "smalljob", Seed: 12, DurationSec: 1800, LoadFactor: 0.4}, Racks: 1},
		},
		GlobalCapFraction: 0.6,
		EpochSec:          900,
		HorizonSec:        3600,
	}
}

func f64(v float64) *float64 { return &v }

func TestSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no members", func(s *Spec) { s.Members = nil }, "no members"},
		{"cap too low", func(s *Spec) { s.GlobalCapFraction = 0 }, "outside (0, 1)"},
		{"cap too high", func(s *Spec) { s.GlobalCapFraction = 1 }, "outside (0, 1)"},
		{"bad division", func(s *Spec) { s.Division = "fair" }, "prorata"},
		{"negative epoch", func(s *Spec) { s.EpochSec = -900 }, "positive"},
		{"negative horizon", func(s *Spec) { s.HorizonSec = -1 }, "horizon"},
		{"horizon under epoch", func(s *Spec) { s.HorizonSec = 600 }, "shorter than epoch"},
		{"negative ratio", func(s *Spec) { s.RealTimeRatio = -1 }, "ratio"},
		{"dup member names", func(s *Spec) { s.Members[1].Name = "alpha" }, "duplicate"},
		{"bad workload kind", func(s *Spec) { s.Members[0].Workload.Kind = "mystery" }, "medianjob"},
		{"bad policy", func(s *Spec) { s.Members[0].Policy = "TURBO" }, "SHUT"},
		{"bad signal", func(s *Spec) { s.Signal = &signal.Spec{Kind: "bogus"} }, "signal"},
	}
	for _, tc := range bad {
		s := smallSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecNormalizeDefaultsAndRoundTrip(t *testing.T) {
	n := Spec{
		Members:           []MemberSpec{{Workload: sim.WorkloadSpec{Kind: "BURSTY"}}},
		GlobalCapFraction: 0.5,
		Division:          "DYNAMIC",
	}.Normalize()
	if n.Division != "demand" || n.EpochSec != DefaultEpoch || n.HorizonSec != DefaultHorizon {
		t.Errorf("defaults wrong: %+v", n)
	}
	if n.Members[0].Name != "member0" || n.Members[0].Policy != "DVFS" || n.Members[0].Workload.Kind != "bursty" {
		t.Errorf("member defaults wrong: %+v", n.Members[0])
	}
	if again := n.Normalize(); !reflect.DeepEqual(again, n) {
		t.Errorf("Normalize not idempotent:\nonce:  %+v\ntwice: %+v", n, again)
	}

	// JSON round trip is exact for a normalized spec.
	n.Signal = &signal.Spec{Kind: "clamp", Min: f64(0.5), Input: &signal.Spec{Kind: "diurnal", Mean: 1, Amplitude: 0.2}}
	n = n.Normalize()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(n); err != nil {
		t.Fatal(err)
	}
	var got Spec
	if err := json.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, n) {
		t.Errorf("round trip drifted:\nin:  %+v\nout: %+v", n, got)
	}
}

// runTwin drives a session to its horizon with the given mutation
// schedule and returns the telemetry snapshot and the mutation log.
func runTwin(t *testing.T, spec Spec, mutate func(s *Session)) (*tsdb.Snapshot, []Applied) {
	t.Helper()
	store := tsdb.New(tsdb.Options{})
	run := store.Run("live")
	s, err := New(spec, Config{Sink: run})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(s)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return run.Snapshot(), s.Log()
}

// TestReplayByteIdentical pins the determinism guardrail: a twin fed a
// recorded mutation log — budget change, member add and removal, node
// failure and repair — replays to byte-identical telemetry.
func TestReplayByteIdentical(t *testing.T) {
	spec := smallSpec()
	spec.HorizonSec = 7200
	spec.Signal = &signal.Spec{Kind: "sinusoid", Mean: 1, Amplitude: 0.2, PeriodSec: 3600}
	gamma := MemberSpec{Name: "gamma", Workload: sim.WorkloadSpec{Kind: "smalljob", Seed: 13, DurationSec: 1800, LoadFactor: 0.3}, Racks: 1}
	liveSnap, log := runTwin(t, spec, func(s *Session) {
		for _, m := range []Mutation{
			{Op: OpSetBudget, AtSec: 900, BudgetFraction: 0.4},
			{Op: OpFailNode, AtSec: 1800, Name: "alpha", Node: 3},
			{Op: OpAddMember, AtSec: 2700, Member: &gamma},
			{Op: OpRepairNode, AtSec: 3600, Name: "alpha", Node: 3},
			{Op: OpRemoveMember, AtSec: 4500, Name: "beta"},
		} {
			if err := s.Mutate(m); err != nil {
				t.Fatal(err)
			}
		}
	})
	if len(log) != 5 {
		t.Fatalf("applied log has %d entries, want 5: %+v", len(log), log)
	}
	for _, a := range log {
		if a.Err != "" {
			t.Fatalf("mutation %d (%s) failed: %s", a.Seq, a.Mutation.Op, a.Err)
		}
	}

	store := tsdb.New(tsdb.Options{})
	run := store.Run("replay")
	if err := Replay(context.Background(), smallSpecLike(spec), log, Config{Sink: run}); err != nil {
		t.Fatal(err)
	}
	live, err := json.Marshal(liveSnap)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := json.Marshal(run.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, replayed) {
		t.Fatalf("replay diverged from live telemetry:\nlive:   %d bytes\nreplay: %d bytes", len(live), len(replayed))
	}
}

// smallSpecLike deep-copies a spec through JSON, proving Replay needs
// nothing but the serialized spec and log.
func smallSpecLike(s Spec) Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return out
}

// TestMutationsChangeTelemetry sanity-checks that mutations actually
// bite: a budget cut shows up in the budget series, a removed member's
// series stop growing.
func TestMutationsChangeTelemetry(t *testing.T) {
	spec := smallSpec()
	snap, log := runTwin(t, spec, func(s *Session) {
		if err := s.Mutate(Mutation{Op: OpSetBudget, AtSec: 1800, BudgetFraction: 0.3}); err != nil {
			t.Fatal(err)
		}
	})
	if len(log) != 1 || log[0].AtEpoch != 1800 || log[0].Err != "" {
		t.Fatalf("log = %+v", log)
	}
	run, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := run.Query("budget", 0, spec.HorizonSec, 1)
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	for _, p := range pts {
		if p.T < 1800 {
			before = p.Mean
		}
		if p.T == 1800 {
			after = p.Mean
		}
	}
	if before <= 0 || after <= 0 || after >= before {
		t.Fatalf("budget cut invisible: before=%v after=%v", before, after)
	}
	if want := before * 0.3 / 0.6; after < want*0.99 || after > want*1.01 {
		t.Fatalf("budget after cut %v, want about %v", after, want)
	}
}

// TestFailureKeepsInvariants attaches the invariant checker to every
// member and drives failures and repairs through it: killed jobs
// requeue legally and failed nodes hold no cores.
func TestFailureKeepsInvariants(t *testing.T) {
	spec := smallSpec()
	checkers := map[string]*invariant.Checker{}
	store := tsdb.New(tsdb.Options{})
	s, err := New(spec, Config{
		Sink: store.Run("inv"),
		Observe: func(name string, ctl *rjms.Controller) {
			checkers[name] = invariant.Attach(ctl, name)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mutation{
		{Op: OpFailNode, AtSec: 900, Name: "alpha", Node: 0},
		{Op: OpFailNode, AtSec: 900, Name: "alpha", Node: 1},
		{Op: OpRepairNode, AtSec: 2700, Name: "alpha", Node: 0},
	} {
		if err := s.Mutate(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Log() {
		if a.Err != "" {
			t.Fatalf("mutation %+v failed: %s", a.Mutation, a.Err)
		}
	}
	if len(checkers) != 2 {
		t.Fatalf("observed %d members, want 2", len(checkers))
	}
	for name, k := range checkers {
		if vs := k.Violations(); len(vs) != 0 {
			t.Errorf("%s: invariant violations: %v", name, vs)
		}
	}
	st := s.Status()
	if !st.Finished || st.VirtualTime != spec.HorizonSec {
		t.Errorf("final status: %+v", st)
	}
}

// TestFailedMutationsAreRecordedNoOps pins the log contract for bad
// mutations: they land in the log with an error and change nothing,
// so replaying the log reproduces the same no-op.
func TestFailedMutationsAreRecordedNoOps(t *testing.T) {
	spec := smallSpec()
	_, log := runTwin(t, spec, func(s *Session) {
		for _, m := range []Mutation{
			{Op: OpSetBudget, AtSec: 900, BudgetFraction: 1.5},
			{Op: OpRemoveMember, AtSec: 900, Name: "nobody"},
			{Op: OpFailNode, AtSec: 900, Name: "alpha", Node: 1 << 30},
		} {
			if err := s.Mutate(m); err != nil {
				t.Fatal(err)
			}
		}
	})
	if len(log) != 3 {
		t.Fatalf("log = %+v", log)
	}
	for _, a := range log {
		if a.Err == "" {
			t.Errorf("bad mutation %+v recorded without error", a.Mutation)
		}
	}
}

func TestMutateRejectsUnknownOp(t *testing.T) {
	s, err := New(smallSpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if err := s.Mutate(Mutation{Op: "explode"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestRemoveLastMemberRefused pins that a twin never runs empty.
func TestRemoveLastMemberRefused(t *testing.T) {
	spec := smallSpec()
	spec.Members = spec.Members[:1]
	_, log := runTwin(t, spec, func(s *Session) {
		if err := s.Mutate(Mutation{Op: OpRemoveMember, AtSec: 900, Name: "alpha"}); err != nil {
			t.Fatal(err)
		}
	})
	if len(log) != 1 || log[0].Err == "" || !strings.Contains(log[0].Err, "last member") {
		t.Fatalf("log = %+v", log)
	}
}

// TestPacingHonorsContext checks a real-time-paced twin stops promptly
// on cancellation instead of sleeping out its horizon.
func TestPacingHonorsContext(t *testing.T) {
	spec := smallSpec()
	spec.RealTimeRatio = 1 // 900 wall seconds per epoch: must not elapse
	s, err := New(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled twin did not stop")
	}
}

// TestStatusDuringRun reads Status and Log concurrently with Run —
// the -race guardrail for the session's cross-goroutine surface.
func TestStatusDuringRun(t *testing.T) {
	spec := smallSpec()
	spec.HorizonSec = 7200
	s, err := New(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background()) }()
	deadline := time.After(30 * time.Second)
	for {
		st := s.Status()
		_ = s.Log()
		if st.Finished {
			break
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if st = s.Status(); !st.Finished {
				t.Fatalf("run returned without finishing: %+v", st)
			}
			return
		case <-deadline:
			t.Fatal("twin did not finish")
		default:
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCheckedInTwinSpecs is the twin half of the examples gate: every
// checked-in twin_*.json must decode strictly, validate, and be stored
// normalized (loading is a fixed point).
func TestCheckedInTwinSpecs(t *testing.T) {
	paths, err := filepath.Glob("../../examples/specs/twin_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in twin specs found; the gate is running against nothing")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var spec Spec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if norm := spec.Normalize(); !reflect.DeepEqual(norm, spec) {
			t.Errorf("%s: stored spec is not normalized:\n stored %+v\n normal %+v", path, spec, norm)
		}
	}
}
