package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestRemoteMatchesLocal pins the -remote satellite's acceptance: the
// same flags run locally and against a simd daemon produce byte-equal
// JSON exports (both flow through the one sink pipeline, the daemon's
// just runs server-side), and the second remote invocation dedupes into
// the daemon's cached run.
func TestRemoteMatchesLocal(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	}()

	dir := t.TempDir()
	localJSON := filepath.Join(dir, "local.json")
	remoteJSON := filepath.Join(dir, "remote.json")
	flags := []string{"-kind", "smalljob", "-seed", "1002", "-racks", "2",
		"-policy", "SHUT", "-cap", "0.6", "-duration", "7200"}

	var localOut bytes.Buffer
	if err := run(append(flags, "-json", localJSON), &localOut); err != nil {
		t.Fatal(err)
	}
	var remoteOut bytes.Buffer
	if err := run(append(flags, "-remote", ts.URL, "-json", remoteJSON), &remoteOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(remoteOut.String(), "submitted single run") {
		t.Errorf("remote output missing submission line:\n%s", remoteOut.String())
	}
	if !strings.Contains(remoteOut.String(), "summary:") {
		t.Errorf("remote output missing the sink rendering:\n%s", remoteOut.String())
	}

	a, err := os.ReadFile(localJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(remoteJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("remote JSON differs from local:\nlocal:  %.300s\nremote: %.300s", a, b)
	}

	var again bytes.Buffer
	if err := run(append(flags, "-remote", ts.URL), &again); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(again.String(), "deduped into existing") {
		t.Errorf("second remote run was not a cache hit:\n%s", again.String())
	}
	if st := srv.Stats(); st.Executions != 1 || st.CacheHits != 1 {
		t.Errorf("daemon stats = %+v, want 1 execution and 1 cache hit", st)
	}
}
