package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
)

// fingerprintWriter hashes everything written through it — the
// streaming form Report.Fingerprint uses so single-run exports never
// need buffering.
type fingerprintWriter struct {
	h hash.Hash
}

func (f *fingerprintWriter) Write(p []byte) (int, error) {
	if f.h == nil {
		f.h = sha256.New()
	}
	return f.h.Write(p)
}

func (f *fingerprintWriter) Sum() string {
	if f.h == nil {
		f.h = sha256.New()
	}
	return hex.EncodeToString(f.h.Sum(nil))
}
