// Quickstart: describe a run declaratively, execute it through the
// internal/sim facade, and inspect the report — the three calls every
// surface (CLIs, examples, services) builds on. The same RunSpec, as
// JSON, sits next to this file in spec.json and runs unchanged through
// `powersched -spec` or `expfig -spec`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/power"
	"repro/internal/sim"
)

func main() {
	// A 2-rack slice of Curie under the SHUT policy: a 60% powercap for
	// the paper's one-hour window in the middle of the smalljob
	// interval. The zero values (seed, window placement, options) mean
	// the paper defaults.
	spec := sim.RunSpec{
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 1002},
		Racks:        2,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	r := *rep.Single
	if r.Err != nil {
		log.Fatal(r.Err)
	}

	fmt.Printf("replayed %s: machine max draw %v, %d cores\n",
		r.Scenario.Name, r.MaxPower, r.Cores)
	fmt.Printf("offline plan: mechanism=%v, %d nodes reserved for switch-off "+
		"(sheds %v; the cap demands %v)\n",
		r.Plan.Mechanism, len(r.Plan.OffNodes), r.Plan.PlannedSaving, r.Plan.NeededSaving)
	fmt.Println("summary:", r.Summary)
	fmt.Printf("energy %.1f kWh, mean draw %v, peak %v\n",
		r.Summary.EnergyJ.KWh(), r.Summary.MeanPower, r.Summary.PeakPower)

	// Show that the cap held while the window was open (skip the first
	// ten minutes of the window, the drain-down transient).
	start, end := r.Scenario.Window()
	budget := power.CapFraction(0.6, r.MaxPower)
	var peakInWindow power.Watts
	for _, s := range r.Samples {
		if s.T >= start+600 && s.T < end && s.Power > peakInWindow {
			peakInWindow = s.Power
		}
	}
	fmt.Printf("peak draw inside the capped window (after drain): %v (budget %v)\n",
		peakInWindow, budget)

	// The same report encodes through the sink pipeline — JSON, CSV or
	// ASCII — without mode dispatch; here the machine-readable summary.
	fmt.Println("\nJSON export of the same report:")
	if err := sim.Export(os.Stdout, "json", rep, sim.SinkOptions{}); err != nil {
		log.Fatal(err)
	}
}
