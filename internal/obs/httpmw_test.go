package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareAssignsRequestID(t *testing.T) {
	var seen string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		if got := ResponseRequestID(w); got != seen {
			t.Errorf("ResponseRequestID = %q, ctx id = %q", got, seen)
		}
		w.WriteHeader(204)
	}), MiddlewareOptions{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || !ValidRequestID(seen) {
		t.Fatalf("no request id assigned: %q", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Errorf("response header %q, want %q", got, seen)
	}
}

func TestMiddlewareAdoptsClientID(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := RequestIDFrom(r.Context()); got != "client-id-1" {
			t.Errorf("ctx id = %q, want client-id-1", got)
		}
	}), MiddlewareOptions{})
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-id-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	// A hostile or over-long id is replaced, not echoed.
	h = Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := RequestIDFrom(r.Context()); !ValidRequestID(got) {
			t.Errorf("invalid ctx id adopted: %q", got)
		}
	}), MiddlewareOptions{})
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "bad id\nwith newline")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); !ValidRequestID(got) || strings.Contains(got, "bad") {
		t.Errorf("hostile id echoed: %q", got)
	}
}

func TestMiddlewareMetricsAndLog(t *testing.T) {
	reg := NewRegistry()
	met := NewHTTPMetrics(reg, "test")
	var logBuf bytes.Buffer
	log := NewLogger(&logBuf, LevelDebug)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if met.InFlight.Value() != 1 {
			t.Errorf("in-flight = %v mid-request, want 1", met.InFlight.Value())
		}
		http.Error(w, "nope", 418)
	}), MiddlewareOptions{
		Metrics: met,
		Log:     log,
		Route:   func(*http.Request) string { return "/v1/thing/{id}" },
	})

	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/thing/42", nil))
	if met.InFlight.Value() != 0 {
		t.Errorf("in-flight = %v after request, want 0", met.InFlight.Value())
	}
	if got := met.Requests.With("/v1/thing/{id}", "GET", "418").Value(); got != 1 {
		t.Errorf("requests counter = %d, want 1", got)
	}
	if got := met.Duration.With("/v1/thing/{id}").Count(); got != 1 {
		t.Errorf("duration count = %d, want 1", got)
	}
	line := logBuf.String()
	for _, want := range []string{"status=418", "route=/v1/thing/{id}", "request_id="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %q", want, line)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(strings.NewReader(buf.String())); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestMiddlewarePreservesFlusher(t *testing.T) {
	var sawFlusher bool
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawFlusher = w.(http.Flusher)
	}), MiddlewareOptions{})
	// httptest.ResponseRecorder implements Flusher — the wrapper must
	// keep advertising it.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !sawFlusher {
		t.Error("Flusher lost through the middleware wrapper")
	}

	// A writer without Flusher must not grow one.
	h = Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawFlusher = w.(http.Flusher)
	}), MiddlewareOptions{})
	h.ServeHTTP(plainWriter{rec: httptest.NewRecorder()}, httptest.NewRequest("GET", "/x", nil))
	if sawFlusher {
		t.Error("Flusher invented for a non-flushing writer")
	}
}

// plainWriter hides ResponseRecorder's Flush behind explicit methods so
// it does not implement http.Flusher.
type plainWriter struct{ rec *httptest.ResponseRecorder }

func (p plainWriter) Header() http.Header         { return p.rec.Header() }
func (p plainWriter) Write(b []byte) (int, error) { return p.rec.Write(b) }
func (p plainWriter) WriteHeader(code int)        { p.rec.WriteHeader(code) }

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc-123")
	if got := RequestIDFrom(ctx); got != "abc-123" {
		t.Errorf("round trip = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty ctx id = %q, want empty", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || !ValidRequestID(a) {
		t.Errorf("ids not unique/valid: %q %q", a, b)
	}
}
