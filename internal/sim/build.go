package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

// traceConfig lowers a WorkloadSpec onto the generator config (the SWF
// half lowers separately through swfSource). The kind must already have
// passed Validate.
func (w WorkloadSpec) traceConfig() (trace.Config, error) {
	cfg := trace.Config{
		Seed:            w.Seed,
		DurationSec:     w.DurationSec,
		LoadFactor:      w.LoadFactor,
		BacklogFraction: w.BacklogFraction,
		Users:           w.Users,
	}
	if w.Kind != "" {
		k, err := Workloads.Lookup(w.Kind)
		if err != nil {
			return trace.Config{}, fmt.Errorf("sim: %w", err)
		}
		cfg.Kind = k
	}
	return cfg, nil
}

// swfSource lowers an SWFSpec onto the streaming trace source;
// machineCores is the replayed machine's size, the rescale target when
// the spec names the trace's native core count.
func (s SWFSpec) swfSource(machineCores int) trace.SWFSource {
	src := trace.SWFSource{
		Path:        s.Path,
		WindowStart: s.WindowStartSec,
		WindowEnd:   s.WindowEndSec,
		TimeScale:   s.TimeScale,
		MaxJobs:     s.MaxJobs,
	}
	if s.Cores != 0 {
		src.CoresFrom, src.CoresTo = s.Cores, machineCores
	}
	return src
}

// MemberScenario lowers one workload + policy + machine scale onto a
// broker-member scenario — the twin layer's bridge from its JSON
// member vocabulary to the replay layer, sharing the exact lowering of
// spec-driven runs (same kind lookup, same SWF rescaling). The member
// carries no cap fields: a broker owns its budget.
func MemberScenario(name string, w WorkloadSpec, policy string, racks int) (replay.Scenario, error) {
	if err := w.validate(); err != nil {
		return replay.Scenario{}, err
	}
	wl, err := w.traceConfig()
	if err != nil {
		return replay.Scenario{}, err
	}
	p, err := Policies.Lookup(policy)
	if err != nil {
		return replay.Scenario{}, fmt.Errorf("sim: %w", err)
	}
	sc := replay.Scenario{Name: name, Workload: wl, Policy: p, ScaleRacks: racks}
	if w.SWF != nil {
		src := w.SWF.swfSource(sc.Machine().Cores())
		sc.SWF = &src
	}
	return sc, nil
}

// label names the workload in scenario labels: the SWF path when
// streaming, the kind otherwise.
func (w WorkloadSpec) label() string {
	if w.SWF != nil {
		return w.SWF.Path
	}
	return w.Kind
}

// baseScenario lowers the spec-level fields shared by every cell.
func (s RunSpec) baseScenario() (replay.Scenario, error) {
	wl, err := s.Workload.traceConfig()
	if err != nil {
		return replay.Scenario{}, err
	}
	base := replay.Scenario{
		Workload:        wl,
		ScaleRacks:      s.Racks,
		CapStart:        s.Cap.StartSec,
		CapDuration:     s.Cap.DurationSec,
		OpenEnded:       s.Cap.OpenEnded,
		KillOnOverrun:   s.Options.KillOnOverrun,
		Scattered:       s.Options.Scattered,
		ReservationLead: s.Options.ReservationLeadSec,
		PlanningHorizon: s.Options.PlanningHorizonSec,
		DynamicDVFS:     s.Options.DynamicDVFS,
		Compact:         s.Options.Compact,
		MeasuredNoise:   s.Options.MeasuredNoise,
		SampleEvery:     s.Options.SampleEverySec,
		BackfillDepth:   s.Options.BackfillDepth,
	}
	if s.Workload.SWF != nil {
		src := s.Workload.SWF.swfSource(base.Machine().Cores())
		base.SWF = &src
	}
	return base, nil
}

// singleScenario lowers a single-mode spec onto its one scenario,
// reproducing the CLI's naming ("label/60%/SHUT", cap percentage
// truncated — the historical single-run spelling).
func (s RunSpec) singleScenario() (replay.Scenario, error) {
	base, err := s.baseScenario()
	if err != nil {
		return replay.Scenario{}, err
	}
	p, err := Policies.Lookup(s.Policies[0])
	if err != nil {
		return replay.Scenario{}, fmt.Errorf("sim: %w", err)
	}
	base.Policy = p
	base.CapFraction = s.CapFractions[0]
	base.Name = s.Name
	if base.Name == "" {
		base.Name = fmt.Sprintf("%s/%d%%/%s", s.Workload.label(), int(base.CapFraction*100), p)
	}
	return base, nil
}

// sweepScenarios lowers a sweep-mode spec onto its scenario list:
// either the explicit Cells, or the Policies x CapFractions cross
// product expanded by replay.SweepScenarios. SWF sweeps are renamed
// after the trace path, matching single-run naming.
func (s RunSpec) sweepScenarios() ([]replay.Scenario, error) {
	if len(s.Cells) > 0 {
		return s.cellScenarios()
	}
	base, err := s.baseScenario()
	if err != nil {
		return nil, err
	}
	policies := make([]core.Policy, len(s.Policies))
	for i, name := range s.Policies {
		if policies[i], err = Policies.Lookup(name); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	scens := replay.SweepScenarios(base, []trace.Config{base.Workload}, s.CapFractions, policies)
	if s.Workload.SWF != nil {
		// The cells replay the streamed trace, not the synthetic kind —
		// name them after the trace file like single-run mode does.
		label := s.Workload.label()
		for i := range scens {
			sc := &scens[i]
			if sc.Capped() {
				sc.Name = fmt.Sprintf("%s/%d%%/%s", label, int(sc.CapFraction*100+0.5), sc.Policy)
			} else {
				sc.Name = fmt.Sprintf("%s/100%%/None", label)
			}
		}
	}
	return scens, nil
}

// cellScenarios lowers an explicit cell list, each cell inheriting the
// spec-level workload, window and options unless it overrides them.
func (s RunSpec) cellScenarios() ([]replay.Scenario, error) {
	out := make([]replay.Scenario, 0, len(s.Cells))
	for i, c := range s.Cells {
		cell := s // shallow copy: per-cell overrides applied below
		if c.Workload != nil {
			cell.Workload = *c.Workload
		}
		if c.Cap != nil {
			cell.Cap = *c.Cap
		}
		if c.Options != nil {
			cell.Options = *c.Options
		}
		sc, err := cell.baseScenario()
		if err != nil {
			return nil, fmt.Errorf("sim: cell %d: %w", i, err)
		}
		if c.Policy != "" {
			p, err := Policies.Lookup(c.Policy)
			if err != nil {
				return nil, fmt.Errorf("sim: cell %d: %w", i, err)
			}
			sc.Policy = p
		}
		sc.CapFraction = c.CapFraction
		sc.Name = c.Name
		if sc.Name == "" {
			sc.Name = sc.Label()
			if lbl := cell.Workload.label(); lbl != "" {
				sc.Name = lbl + "/" + sc.Label()
			}
		}
		out = append(out, sc)
	}
	return out, nil
}

// Scenarios previews the expanded scenario list of a single- or
// sweep-mode spec (after normalization) without running anything —
// what presenters announce and services cost-estimate. Federation
// specs expand through FederationScenarios instead.
func (s RunSpec) Scenarios() ([]replay.Scenario, error) {
	n := s.Normalize()
	switch n.Mode {
	case ModeSingle:
		sc, err := n.singleScenario()
		if err != nil {
			return nil, err
		}
		return []replay.Scenario{sc}, nil
	case ModeSweep:
		return n.sweepScenarios()
	}
	return nil, fmt.Errorf("sim: %s specs expand through FederationScenarios", n.Mode)
}

// FederationScenarios previews the expanded federation cell list of a
// federation-mode spec without running anything.
func (s RunSpec) FederationScenarios() ([]replay.FederationScenario, error) {
	n := s.Normalize()
	if n.Mode != ModeFederation {
		return nil, fmt.Errorf("sim: %s specs expand through Scenarios", n.Mode)
	}
	return n.federationScenarios()
}

// federationScenarios lowers a federation-mode spec onto its cell list:
// the member-count x cap x division cross product over library-built
// fleets (the powersched -federate vocabulary).
func (s RunSpec) federationScenarios() ([]replay.FederationScenario, error) {
	f := s.Federation
	var out []replay.FederationScenario
	for _, n := range f.MemberCounts {
		for _, frac := range s.CapFractions {
			for _, dname := range f.Divisions {
				div, err := Divisions.Lookup(dname)
				if err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
				fs := replay.FederationLibraryScenario(n, s.Racks, frac, div)
				if f.EpochSec > 0 {
					fs.EpochSec = f.EpochSec
				}
				fs.BudgetSignal = f.Signal
				out = append(out, fs)
			}
		}
	}
	return out, nil
}

// CellsFromScenarios converts replay scenarios into the equivalent
// explicit cell list — the bridge that lets the predefined figure grids
// (Fig8, claims, ablations) and any other scenario-builder output be
// written down as a declarative RunSpec. Scenario fields the cell
// vocabulary cannot carry (explicit Jobs lists) are rejected.
func CellsFromScenarios(scens []replay.Scenario) ([]CellSpec, error) {
	out := make([]CellSpec, 0, len(scens))
	for i, sc := range scens {
		if sc.Jobs != nil {
			return nil, fmt.Errorf("sim: scenario %d (%s) carries an explicit job list; specs describe workloads by kind or SWF", i, sc.Name)
		}
		wl := &WorkloadSpec{
			Kind:            sc.Workload.Kind.String(),
			Seed:            sc.Workload.Seed,
			DurationSec:     sc.Workload.DurationSec,
			LoadFactor:      sc.Workload.LoadFactor,
			BacklogFraction: sc.Workload.BacklogFraction,
			Users:           sc.Workload.Users,
		}
		if sc.SWF != nil {
			wl.SWF = &SWFSpec{
				Path:           sc.SWF.Path,
				WindowStartSec: sc.SWF.WindowStart,
				WindowEndSec:   sc.SWF.WindowEnd,
				TimeScale:      sc.SWF.TimeScale,
				Cores:          sc.SWF.CoresFrom,
				MaxJobs:        sc.SWF.MaxJobs,
			}
		}
		cell := CellSpec{
			Name:        sc.Name,
			Workload:    wl,
			Policy:      sc.Policy.String(),
			CapFraction: sc.CapFraction,
		}
		if sc.CapStart != 0 || sc.CapDuration != 0 || sc.OpenEnded {
			cell.Cap = &CapSpec{StartSec: sc.CapStart, DurationSec: sc.CapDuration, OpenEnded: sc.OpenEnded}
		}
		opt := OptionSpec{
			KillOnOverrun:      sc.KillOnOverrun,
			Scattered:          sc.Scattered,
			ReservationLeadSec: sc.ReservationLead,
			PlanningHorizonSec: sc.PlanningHorizon,
			DynamicDVFS:        sc.DynamicDVFS,
			Compact:            sc.Compact,
			MeasuredNoise:      sc.MeasuredNoise,
			SampleEverySec:     sc.SampleEvery,
			BackfillDepth:      sc.BackfillDepth,
		}
		if opt != (OptionSpec{}) {
			cell.Options = &opt
		}
		out = append(out, cell)
	}
	return out, nil
}
