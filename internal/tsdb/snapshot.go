package tsdb

import (
	"fmt"
	"sort"
)

// SeriesSnapshot is the serializable form of one series' level pyramid:
// every retained point per level (oldest first), the in-flight cascade
// aggregates, and the monotonicity watermark. It is exactly the state a
// Restore needs to continue appending where the snapshot left off.
type SeriesSnapshot struct {
	Name string `json:"name"`
	// Levels holds each ring's live points, level 0 first, oldest point
	// first within a level.
	Levels [][]Point `json:"levels"`
	// Pending carries the partial cascade batch per level (zero-Count
	// entries are idle).
	Pending []Point `json:"pending,omitempty"`
	LastT   int64   `json:"last_t"`
	Any     bool    `json:"any"`
}

// Snapshot is the serializable form of one run's whole series set — the
// payload the service's durable run archive stores next to a report so
// downsampled telemetry survives daemon restarts. Series are sorted by
// name, so encoding a snapshot is deterministic.
type Snapshot struct {
	Options Options          `json:"options"`
	Series  []SeriesSnapshot `json:"series"`
	Dropped []string         `json:"dropped,omitempty"`
}

// Snapshot captures the run's current state. The snapshot shares
// nothing with the live run (points are copied), so it stays valid
// however the run is appended to afterwards.
func (r *Run) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := &Snapshot{Options: r.opt}
	for _, name := range r.seriesNamesLocked() {
		s := r.series[name]
		ss := SeriesSnapshot{
			Name:    name,
			Levels:  make([][]Point, len(s.levels)),
			Pending: append([]Point(nil), s.pending...),
			LastT:   s.lastT,
			Any:     s.any,
		}
		for i := range s.levels {
			lv := &s.levels[i]
			pts := make([]Point, lv.n)
			for j := 0; j < lv.n; j++ {
				pts[j] = lv.at(j)
			}
			ss.Levels[i] = pts
		}
		snap.Series = append(snap.Series, ss)
	}
	for name := range r.dropped {
		snap.Dropped = append(snap.Dropped, name)
	}
	sort.Strings(snap.Dropped)
	return snap
}

// Restore rebuilds a live Run from the snapshot: ring contents, cascade
// state and watermarks land exactly where Snapshot captured them, so
// queries answer identically and later appends continue the cascade
// seamlessly. Snapshots from decoded JSON may be hostile or truncated;
// Restore validates shape and returns errors, never panics. Points
// beyond a level's ring capacity keep only the newest (the ring's own
// overwrite rule).
func (s *Snapshot) Restore() (*Run, error) {
	if s == nil {
		return nil, fmt.Errorf("tsdb: nil snapshot")
	}
	opt := s.Options.withDefaults()
	run := &Run{opt: opt, series: map[string]*series{}}
	for i, ss := range s.Series {
		if ss.Name == "" {
			return nil, fmt.Errorf("tsdb: snapshot series %d has no name", i)
		}
		if run.series[ss.Name] != nil {
			return nil, fmt.Errorf("tsdb: snapshot repeats series %q", ss.Name)
		}
		if len(ss.Levels) > opt.Levels {
			return nil, fmt.Errorf("tsdb: series %q snapshots %d levels, store holds %d",
				ss.Name, len(ss.Levels), opt.Levels)
		}
		if len(ss.Pending) > opt.Levels {
			return nil, fmt.Errorf("tsdb: series %q snapshots %d pending batches, store holds %d levels",
				ss.Name, len(ss.Pending), opt.Levels)
		}
		sr := newSeries(opt)
		for l, pts := range ss.Levels {
			for _, p := range pts {
				sr.levels[l].push(p)
			}
		}
		copy(sr.pending, ss.Pending)
		sr.lastT, sr.any = ss.LastT, ss.Any
		run.series[ss.Name] = sr
	}
	for _, name := range s.Dropped {
		if run.dropped == nil {
			run.dropped = map[string]bool{}
		}
		run.dropped[name] = true
	}
	return run, nil
}

// Restore installs a run restored from the snapshot under the given id,
// replacing any prior entry — the store-level hook the service uses
// when an archived run's telemetry is queried after a restart.
func (st *Store) Restore(id string, snap *Snapshot) (*Run, error) {
	r, err := snap.Restore()
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.runs[id] = r
	return r, nil
}

// seriesNamesLocked returns the sorted series names; r.mu must be held.
func (r *Run) seriesNamesLocked() []string {
	out := make([]string, 0, len(r.series))
	for name := range r.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
