package service

import (
	"io"

	"repro/internal/obs"
)

// gatewayMetrics is the gateway's own registry: HTTP middleware
// families under the simd_gateway namespace (disjoint from the worker
// daemons' simd_http_* families, so a fleet-wide scrape job never sees
// colliding names with different meanings), the dispatch/proxy/requeue
// counters the routing loop drives, and live gauges over the member
// table and dispatch queue.
type gatewayMetrics struct {
	reg     *obs.Registry
	httpMet *obs.HTTPMetrics

	dispatches      *obs.Counter
	dispatchErrors  *obs.Counter
	dispatchRetries *obs.Counter
	proxyErrors     *obs.Counter
	requeues        *obs.Counter
}

func newGatewayMetrics(g *Gateway) *gatewayMetrics {
	reg := obs.NewRegistry()
	m := &gatewayMetrics{
		reg:     reg,
		httpMet: obs.NewHTTPMetrics(reg, "simd_gateway"),
		dispatches: reg.Counter("simd_gateway_dispatches_total",
			"Submissions handed to a worker (successful dispatch attempts)."),
		dispatchErrors: reg.Counter("simd_gateway_dispatch_errors_total",
			"Dispatch attempts that errored (retryable or fatal)."),
		dispatchRetries: reg.Counter("simd_gateway_dispatch_retries_total",
			"Dispatches re-enqueued by the retry scheduler after a retryable error."),
		proxyErrors: reg.Counter("simd_gateway_proxy_errors_total",
			"Per-run subresource proxies that failed against the assigned worker."),
		requeues: reg.Counter("simd_gateway_requeues_total",
			"Runs rescued off dead workers back into the dispatch queue."),
	}
	reg.GaugeFunc("simd_gateway_members_alive",
		"Registered workers with a current lease.",
		func() float64 { alive, _ := g.memberCounts(); return float64(alive) })
	reg.GaugeFunc("simd_gateway_members_dead",
		"Registered workers whose lease has expired.",
		func() float64 { _, dead := g.memberCounts(); return float64(dead) })
	reg.GaugeFunc("simd_gateway_queue_depth",
		"Undispatched submissions waiting for a worker.",
		func() float64 { return float64(g.sched.Queued()) })
	return m
}

// scrape writes the gateway's own families followed by the
// fleet-aggregated simd_fleet_* set derived from one FleetStats
// snapshot (the same fan-out GET /v1/stats performs). The snapshot
// families go through a scratch registry so their exposition format —
// HELP/TYPE lines, escaping, ordering — matches everything else; the
// two name sets are disjoint, so the concatenation is a single valid
// exposition.
func (m *gatewayMetrics) scrape(w io.Writer, fs FleetStats) error {
	if err := m.reg.WritePrometheus(w); err != nil {
		return err
	}
	scratch := obs.NewRegistry()
	gs := fs.Gateway
	gauge := func(name, help string, v float64) {
		scratch.GaugeFunc(name, help, func() float64 { return v })
	}
	counter := func(name, help string, v float64) {
		scratch.CounterFunc(name, help, func() float64 { return v })
	}
	gauge("simd_fleet_members", "Workers the gateway has ever registered.", float64(gs.Members))
	gauge("simd_fleet_members_alive", "Workers with a current lease.", float64(gs.Alive))
	gauge("simd_fleet_runs", "Runs the gateway has routed (all states).", float64(gs.Runs))
	gauge("simd_fleet_runs_queued", "Routed runs waiting for dispatch.", float64(gs.Queued))
	gauge("simd_fleet_runs_running", "Routed runs executing on workers.", float64(gs.Running))
	gauge("simd_fleet_runs_done", "Routed runs that completed.", float64(gs.Done))
	gauge("simd_fleet_runs_failed", "Routed runs that failed.", float64(gs.Failed))
	gauge("simd_fleet_runs_cancelled", "Routed runs that were cancelled.", float64(gs.Cancelled))
	counter("simd_fleet_cache_hits_total", "Submissions deduped at the gateway.", float64(gs.CacheHits))
	counter("simd_fleet_requeues_total", "Worker-death requeues across the fleet.", float64(gs.Requeues))
	gauge("simd_fleet_twins_live", "Live twin sessions summed over reachable workers.", float64(gs.TwinsLive))
	// Worker-reported aggregates: executions and archive depth summed
	// over the members that answered the stats fan-out.
	var execs, archived float64
	for _, ms := range fs.Members {
		if ms.Stats != nil {
			execs += float64(ms.Stats.Executions)
			archived += float64(ms.Stats.Archived)
		}
	}
	counter("simd_fleet_executions_total", "Fresh executions summed over reachable workers.", execs)
	gauge("simd_fleet_archived", "Archived records summed over reachable workers.", archived)
	return scratch.WritePrometheus(w)
}
