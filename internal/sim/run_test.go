package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TestSingleMatchesDirectReplay: the facade path must reproduce a
// direct replay.Run bit for bit (same scenario, same export bytes).
func TestSingleMatchesDirectReplay(t *testing.T) {
	spec := RunSpec{
		Workload:     WorkloadSpec{Kind: "smalljob", Seed: 1002},
		Racks:        2,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeSingle || rep.Single == nil {
		t.Fatalf("mode %q, single=%v", rep.Mode, rep.Single != nil)
	}

	direct := replay.Run(replay.Scenario{
		Name:        "smalljob/60%/SHUT",
		Workload:    trace.Config{Kind: trace.SmallJob, Seed: 1002},
		Policy:      core.PolicyShut,
		CapFraction: 0.6,
		ScaleRacks:  2,
	})
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}

	var a, b bytes.Buffer
	if err := replay.WriteJSON(&a, []replay.Result{*rep.Single}); err != nil {
		t.Fatal(err)
	}
	if err := replay.WriteJSON(&b, []replay.Result{direct}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("facade single run drifted from direct replay:\nfacade: %s\ndirect: %s", a.String(), b.String())
	}
}

// TestSpecPathMatchesLiteralSpec is the facade half of the
// flag-vs-spec parity criterion: a spec described in Go and the same
// spec round-tripped through its JSON file form produce bit-identical
// sweep results at any worker count.
func TestSpecPathMatchesLiteralSpec(t *testing.T) {
	literal := RunSpec{
		Workload:     WorkloadSpec{Kind: "smalljob", Seed: 1002},
		Racks:        2,
		Policies:     []string{"SHUT", "DVFS"},
		CapFractions: []float64{0, 0.6},
		Workers:      2,
	}
	var buf bytes.Buffer
	if err := literal.Normalize().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	repA, err := Run(context.Background(), literal)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(context.Background(), fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := repA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := repB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("literal vs JSON-loaded spec fingerprints differ: %s vs %s", fpA, fpB)
	}
}

// TestSweepMatchesDirectExperiment: the facade sweep equals the same
// grid run straight through internal/experiment.
func TestSweepMatchesDirectExperiment(t *testing.T) {
	spec := RunSpec{
		Name:         "parity",
		Workload:     WorkloadSpec{Kind: "medianjob", Seed: 1001},
		Racks:        2,
		Policies:     []string{"SHUT", "DVFS"},
		CapFractions: []float64{0.6},
		Workers:      2,
	}
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	grid := experiment.Grid{
		Name:         "parity",
		Workloads:    []trace.Config{{Kind: trace.MedianJob, Seed: 1001}},
		CapFractions: []float64{0.6},
		Policies:     []core.Policy{core.PolicyShut, core.PolicyDvfs},
		Base:         replay.Scenario{ScaleRacks: 2},
	}
	direct := experiment.Runner{Workers: 2}.Run("parity", grid.Scenarios())
	if rep.Table.Fingerprint() != direct.Fingerprint() {
		t.Error("facade sweep drifted from direct experiment run")
	}
}

// TestRunCancelledContext: the facade acceptance criterion — a
// cancelled context returns promptly with partial results and no
// leaked goroutines (the -race job watches the latter).
func TestRunCancelledContext(t *testing.T) {
	spec := RunSpec{
		Workload:     WorkloadSpec{Kind: "smalljob", Seed: 1002},
		Racks:        2,
		Policies:     []string{"SHUT", "DVFS", "MIX"},
		CapFractions: []float64{0, 0.8, 0.6, 0.4},
		Workers:      2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if rep.Table == nil {
		t.Fatal("cancelled sweep returned no partial table")
	}
	for i, row := range rep.Table.Rows {
		if row.Scenario.Name == "" {
			t.Errorf("row %d lost its scenario", i)
		}
		if !errors.Is(row.Err, context.Canceled) {
			t.Errorf("row %d err = %v, want context.Canceled", i, row.Err)
		}
	}
}

// TestRunFederationSingle pins the one-cell federation path: the raw
// result is exposed alongside the one-row table.
func TestRunFederationSingle(t *testing.T) {
	spec := RunSpec{
		Racks:        1,
		CapFractions: []float64{0.5},
		Federation:   &FederationSpec{MemberCounts: []int{2}, Divisions: []string{"demand"}},
	}
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeFederation || rep.FederationTable == nil || rep.Federation == nil {
		t.Fatalf("federation payloads missing: table=%v raw=%v", rep.FederationTable != nil, rep.Federation != nil)
	}
	if rep.Federation.Err != nil {
		t.Fatal(rep.Federation.Err)
	}
	if got := len(rep.Federation.Members); got != 2 {
		t.Errorf("members = %d, want 2", got)
	}
}

// TestRunInvalidSpecFailsFast: Run validates before executing.
func TestRunInvalidSpecFailsFast(t *testing.T) {
	_, err := Run(context.Background(), RunSpec{Policies: []string{"TURBO"}})
	if err == nil {
		t.Fatal("invalid spec ran")
	}
}

// TestProbeSWFFailsFast: a missing trace file surfaces before any
// controller is built, like the historical CLI probe.
func TestProbeSWFFailsFast(t *testing.T) {
	spec := RunSpec{
		Workload:     WorkloadSpec{SWF: &SWFSpec{Path: "testdata/definitely-missing.swf"}},
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	_, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("missing SWF file ran")
	}
}
