// Command powersched replays workload scenarios end to end: it
// generates (or loads) a Curie-like workload, runs the powercap-aware
// RJMS under the chosen policy and cap, and prints the Figure 6/7 style
// utilization and power charts plus the run summary.
//
// -policy and -cap accept comma-separated lists; more than one
// combination switches to sweep mode, where every (policy x cap) cell
// runs in parallel through the internal/experiment engine and the
// result is the aggregated comparison table instead of a single run's
// charts.
//
// With -swf the workload streams from a Standard Workload Format trace
// instead: the file is scanned lazily through the trace pipeline
// (optionally windowed with -window START:END, arrival-rescaled with
// -timescale, and width-rescaled from its native -swfcores machine), so
// archive traces of any size replay in bounded memory. Streaming
// requires the trace to be submit-sorted (the Parallel Workloads
// Archive convention; equal-timestamp records replay in file order) —
// an out-of-order record aborts the replay with a clear error rather
// than reordering causality.
//
// Usage:
//
//	powersched -kind 24h -policy MIX -cap 0.4 [-racks 56] [-seed 1004] \
//	           [-kill] [-scattered] [-lead 0] [-width 100]
//	powersched -kind 24h -policy SHUT,DVFS,MIX -cap 0.4,0.6,0.8 -workers 4
//	powersched -swf curie.swf -window 86400:104400 -swfcores 80640 \
//	           -duration 18000 -policy SHUT -cap 0.6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/federation"
	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/slurmconf"
	"repro/internal/trace"
)

func main() {
	var (
		kind      = flag.String("kind", "medianjob", "workload kind: medianjob|smalljob|bigjob|24h|diurnal|bursty|heavytail")
		policy    = flag.String("policy", "SHUT", "powercap policies, comma separated: NONE|SHUT|DVFS|MIX|IDLE")
		capList   = flag.String("cap", "0.6", "powercap fractions of max power, comma separated (>=1 disables)")
		racks     = flag.Int("racks", 56, "machine size in racks (56 = full Curie)")
		seed      = flag.Int64("seed", 1001, "workload seed")
		kill      = flag.Bool("kill", false, "kill jobs when the cap activates above the draw")
		scattered = flag.Bool("scattered", false, "disable bonus-aware grouped shutdown")
		lead      = flag.Int64("lead", 0, "seconds before the window reserved nodes stop taking jobs")
		horizon   = flag.Int64("horizon", 0, "cap planning horizon seconds (0 = default 3600)")
		width     = flag.Int("width", 96, "chart width")
		height    = flag.Int("height", 16, "chart height")
		dynamic   = flag.Bool("dynamic", false, "re-clock running jobs at cap boundaries (Section VIII extension)")
		workers   = flag.Int("workers", 0, "sweep mode: parallel workers (0 = GOMAXPROCS)")
		jsonOut   = flag.String("json", "", "write the run summary (or the sweep results) as JSON to this file")
		csvOut    = flag.String("csv", "", "write the time series (or the sweep summary table) as CSV to this file")
		confPath  = flag.String("conf", "", "print the controller configuration of this run as a slurmconf file and exit")
		swfPath   = flag.String("swf", "", "stream this SWF trace instead of the synthetic workload (bounded memory at any trace size; must be submit-sorted, the archive convention)")
		swfWindow = flag.String("window", "", "with -swf: replay the submit window START:END (seconds), re-based to t=0")
		timeScale = flag.Float64("timescale", 0, "with -swf: multiply submit times (0.5 = double the arrival rate)")
		swfCores  = flag.Int("swfcores", 0, "with -swf: the trace's native machine size; job widths are rescaled onto the replayed machine")
		duration  = flag.Int64("duration", 0, "replayed interval seconds (default: the workload kind's length)")
		federate  = flag.Bool("federate", false, "federated mode: run member clusters from the scenario library under a shared site budget")
		members   = flag.String("members", "3", "with -federate: member-cluster counts, comma separated")
		division  = flag.String("division", "demand", "with -federate: budget division policies, comma separated: prorata|demand")
		epoch     = flag.Int64("epoch", 0, "with -federate: redistribution period seconds (0 = 900)")
	)
	flag.Parse()

	if *federate {
		runFederate(*members, *capList, *division, *racks, *epoch, *workers, *width, *csvOut, *jsonOut)
		return
	}

	k, err := trace.ParseKind(*kind)
	if err != nil {
		fail(err)
	}
	policies, err := parsePolicies(*policy)
	if err != nil {
		fail(err)
	}
	caps, err := parseCaps(*capList)
	if err != nil {
		fail(err)
	}
	scaleRacks := 0
	if *racks != 56 {
		scaleRacks = *racks
	}
	base := replay.Scenario{
		Workload:        trace.Config{Kind: k, Seed: *seed, DurationSec: *duration},
		ScaleRacks:      scaleRacks,
		KillOnOverrun:   *kill,
		Scattered:       *scattered,
		ReservationLead: *lead,
		PlanningHorizon: *horizon,
		DynamicDVFS:     *dynamic,
	}
	swfLabel := ""
	if *swfPath != "" {
		src := trace.SWFSource{Path: *swfPath, TimeScale: *timeScale}
		if *swfWindow != "" {
			start, end, err := parseWindow(*swfWindow)
			if err != nil {
				fail(err)
			}
			src.WindowStart, src.WindowEnd = start, end
		}
		if *swfCores != 0 {
			// Invalid sizes surface as stream errors in the probe below
			// rather than silently replaying unscaled.
			src.CoresFrom, src.CoresTo = *swfCores, base.Machine().Cores()
		}
		// Probe the stream so a bad path, corrupt header, invalid
		// transform or empty window fails here, not mid-sweep. The probe
		// scans the trace up to the window start once and the replay
		// re-scans it — the deliberate cost of failing fast on archives.
		fs, err := src.Open()
		if err != nil {
			fail(err)
		}
		first, err := fs.Next()
		fs.Close()
		if err != nil {
			fail(err)
		}
		if first == nil {
			fail(fmt.Errorf("no jobs in %s after the -window/-timescale transforms; check the window bounds (trace seconds)", *swfPath))
		}
		base.SWF = &src
		swfLabel = *swfPath
		fmt.Printf("streaming %s (window %q, timescale %v)\n", *swfPath, *swfWindow, *timeScale)
	}

	if *confPath != "" {
		f := slurmconf.CurieFile(policies[0])
		f.Config.Topology = base.Machine()
		f.Config.KillOnOverrun = *kill
		f.Config.ScatteredShutdown = *scattered
		f.Config.ReservationLead = *lead
		f.Config.CapPlanningHorizon = *horizon
		f.Config.DynamicDVFS = *dynamic
		if err := writeFile(*confPath, func(w io.Writer) error {
			return slurmconf.Write(w, f)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("configuration written to %s\n", *confPath)
		return
	}

	if len(policies)*len(caps) > 1 {
		runSweep(base, policies, caps, swfLabel, *workers, *csvOut, *jsonOut)
		return
	}
	runSingle(base, policies[0], caps[0], swfLabel, *width, *height, *csvOut, *jsonOut)
}

// runSweep fans the (policy x cap) grid out across the worker pool and
// prints the aggregated comparison. -csv/-json switch meaning here:
// they export the sweep table, not a single run's series.
func runSweep(base replay.Scenario, policies []core.Policy, caps []float64, swfLabel string, workers int, csvOut, jsonOut string) {
	grid := experiment.Grid{
		Name:         "powersched",
		Workloads:    []trace.Config{base.Workload},
		CapFractions: caps,
		Policies:     policies,
		Base:         base,
	}
	scens := grid.Scenarios()
	if swfLabel != "" {
		// The cells replay the loaded SWF jobs, not the synthetic kind
		// — name them after the trace file like single-run mode does.
		for i := range scens {
			s := &scens[i]
			if s.Capped() {
				s.Name = fmt.Sprintf("%s/%d%%/%s", swfLabel, int(s.CapFraction*100+0.5), s.Policy)
			} else {
				s.Name = fmt.Sprintf("%s/100%%/None", swfLabel)
			}
		}
	}
	fmt.Printf("sweeping %d scenarios on %d racks (%d nodes)...\n",
		len(scens), base.Machine().Racks, base.Machine().Nodes())
	t := experiment.Runner{
		Workers: workers,
		OnResult: func(done, total int, r experiment.Result) {
			status := "ok"
			if r.Err != nil {
				status = "FAILED: " + r.Err.Error()
			}
			fmt.Printf("  [%d/%d] %-28s %v (%s)\n", done, total, r.Scenario.Name, r.Elapsed.Round(1e6), status)
		},
	}.Run(grid.Name, scens)
	fmt.Println()
	fmt.Print(t.ASCII(40))
	if csvOut != "" {
		if err := writeFile(csvOut, t.WriteCSV); err != nil {
			fail(err)
		}
		fmt.Printf("sweep summary CSV written to %s\n", csvOut)
	}
	if jsonOut != "" {
		if err := writeFile(jsonOut, t.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Printf("sweep JSON written to %s\n", jsonOut)
	}
	if errs := t.Errs(); len(errs) > 0 {
		fail(errs[0])
	}
}

// runSingle is the classic one-scenario replay with the full chart
// output.
func runSingle(base replay.Scenario, p core.Policy, capFrac float64, swfLabel string, width, height int, csvOut, jsonOut string) {
	s := base
	s.Policy = p
	s.CapFraction = capFrac
	label := s.Workload.Kind.String()
	if swfLabel != "" {
		label = swfLabel
	}
	s.Name = fmt.Sprintf("%s/%d%%/%s", label, int(capFrac*100), p)
	fmt.Printf("replaying %s on %d racks (%d nodes)...\n", s.Name, s.Machine().Racks, s.Machine().Nodes())
	r := replay.Run(s)
	if r.Err != nil {
		fail(r.Err)
	}
	if s.Capped() {
		start, end := s.Window()
		fmt.Printf("powercap window: [%d, %d) at %.0f%% of %v\n",
			start, end, capFrac*100, r.MaxPower)
		fmt.Printf("offline plan: %v, %d nodes reserved for switch-off (saving %v, needed %v)\n",
			r.Plan.Mechanism, len(r.Plan.OffNodes), r.Plan.PlannedSaving, r.Plan.NeededSaving)
	}
	fmt.Println()
	fmt.Print(figures.TimeSeries(r, width, height))
	fmt.Println()
	fmt.Println("summary:", r.Summary)
	fmt.Printf("normalized: energy=%.3f work=%.3f launched=%.3f mean-wait=%.0fs\n",
		r.Summary.NormEnergy, r.Summary.NormWork, r.Summary.NormLaunched, r.Summary.MeanWaitSec)
	fmt.Printf("launch frequencies: %v\n", r.Summary.LaunchedByFreq)
	if r.Summary.Rescales > 0 {
		fmt.Printf("dynamic re-clocks: %d\n", r.Summary.Rescales)
	}
	if jsonOut != "" {
		if err := writeFile(jsonOut, func(w io.Writer) error {
			return replay.WriteJSON(w, []replay.Result{r})
		}); err != nil {
			fail(err)
		}
		fmt.Printf("summary JSON written to %s\n", jsonOut)
	}
	if csvOut != "" {
		if err := writeFile(csvOut, func(w io.Writer) error {
			return replay.WriteSeriesCSV(w, r.Samples)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("time series CSV written to %s\n", csvOut)
	}
}

// runFederate is the -federate entry point: a single (members x cap x
// division) combination replays one federation with the full
// per-member breakdown; any multi-valued axis switches to sweep mode
// over the federated grid.
func runFederate(memberList, capList, divisionList string, racks int, epoch int64, workers, width int, csvOut, jsonOut string) {
	memberCounts, err := parseInts(memberList)
	if err != nil {
		fail(err)
	}
	caps, err := parseCaps(capList)
	if err != nil {
		fail(err)
	}
	var divisions []replay.Division
	for _, part := range strings.Split(divisionList, ",") {
		d, err := replay.ParseDivision(strings.TrimSpace(part))
		if err != nil {
			fail(err)
		}
		divisions = append(divisions, d)
	}
	for _, frac := range caps {
		if frac <= 0 || frac >= 1 {
			fail(fmt.Errorf("federated mode needs cap fractions in (0, 1), got %v", frac))
		}
	}
	if epoch < 0 {
		fail(fmt.Errorf("negative -epoch %d", epoch))
	}
	scale := 0
	if racks != 56 {
		scale = racks
	}
	grid := experiment.FederationGrid{
		Name:         "powersched-federation",
		MemberCounts: memberCounts,
		CapFractions: caps,
		Divisions:    divisions,
		ScaleRacks:   scale,
		EpochSec:     epoch,
	}

	if grid.Size() == 1 {
		fs := grid.Scenarios()[0]
		fmt.Printf("federating %d member clusters (%d racks each) under a %d%% site budget, %s division, %ds epochs...\n",
			len(fs.Members), fs.Members[0].Machine().Racks, int(fs.GlobalCapFraction*100+0.5), fs.Division, fs.Epoch())
		r := federation.Run(fs)
		if r.Err != nil {
			fail(r.Err)
		}
		fmt.Printf("site budget %v, peak site draw %v, energy %v\n", r.GlobalBudgetW, r.PeakGlobalW, r.EnergyJ)
		fmt.Printf("aggregate: launched %d/%d completed %d killed %d mean BSLD %.2f mean wait %.0fs\n\n",
			r.JobsLaunched, r.JobsSubmitted, r.JobsCompleted, r.JobsKilled, r.MeanBSLD, r.MeanWaitSec)
		fmt.Printf("%-24s %10s %10s %8s %9s %12s\n", "member", "maxpower", "finalcap", "bsld", "wait(s)", "launched")
		for _, m := range r.Members {
			s := m.Summary
			fmt.Printf("%-24s %10.3g %10.3g %8.2f %9.0f %6d/%-5d\n",
				m.Name, float64(m.MaxPower), float64(m.FinalCapW), s.MeanBSLD, s.MeanWaitSec, s.JobsLaunched, s.JobsSubmitted)
		}
		if len(r.Epochs) > 0 {
			fmt.Printf("\nshare timeline (%d epochs):\n", len(r.Epochs))
			step := (len(r.Epochs) + 9) / 10 // at most ~10 lines
			for i := 0; i < len(r.Epochs); i += step {
				ep := r.Epochs[i]
				fmt.Printf("  t=%6d  caps:", ep.T)
				for _, c := range ep.CapW {
					fmt.Printf(" %8.3g", float64(c))
				}
				fmt.Printf("  pending:")
				for _, p := range ep.PendingCores {
					fmt.Printf(" %6d", p)
				}
				fmt.Println()
			}
		}
		// -csv/-json export the run as a one-cell federation table, the
		// same formats sweep mode writes.
		single := experiment.FederationTable{Name: grid.Name, Workers: 1,
			Rows: []experiment.FederationResult{{Result: r}}}
		if csvOut != "" {
			if err := writeFile(csvOut, single.WriteCSV); err != nil {
				fail(err)
			}
			fmt.Printf("federation CSV written to %s\n", csvOut)
		}
		if jsonOut != "" {
			if err := writeFile(jsonOut, single.WriteJSON); err != nil {
				fail(err)
			}
			fmt.Printf("federation JSON written to %s\n", jsonOut)
		}
		return
	}

	fmt.Printf("sweeping %d federations...\n", grid.Size())
	t := experiment.FederationRunner{
		Workers: workers,
		OnResult: func(done, total int, r experiment.FederationResult) {
			status := "ok"
			if r.Err != nil {
				status = "FAILED: " + r.Err.Error()
			}
			fmt.Printf("  [%d/%d] %-22s %v (%s)\n", done, total, r.Scenario.Name, r.Elapsed.Round(1e6), status)
		},
	}.Run(grid.Name, grid.Scenarios())
	fmt.Println()
	fmt.Print(t.ASCII(width))
	if csvOut != "" {
		if err := writeFile(csvOut, t.WriteCSV); err != nil {
			fail(err)
		}
		fmt.Printf("federation sweep CSV written to %s\n", csvOut)
	}
	if jsonOut != "" {
		if err := writeFile(jsonOut, t.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Printf("federation sweep JSON written to %s\n", jsonOut)
	}
	if errs := t.Errs(); len(errs) > 0 {
		fail(errs[0])
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad member count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no member counts given")
	}
	return out, nil
}

func parsePolicies(s string) ([]core.Policy, error) {
	var out []core.Policy
	for _, part := range strings.Split(s, ",") {
		p, err := core.ParsePolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func parseWindow(s string) (start, end int64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -window %q, want START:END seconds", s)
	}
	start, err = strconv.ParseInt(parts[0], 10, 64)
	if err == nil {
		end, err = strconv.ParseInt(parts[1], 10, 64)
	}
	if err != nil || start < 0 || end <= start {
		return 0, 0, fmt.Errorf("bad -window %q, want 0 <= START < END", s)
	}
	return start, end, nil
}

func parseCaps(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad cap fraction %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cap fractions given")
	}
	return out, nil
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
