package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the request-tracing header: generated at the edge
// when absent, echoed on every response, propagated gateway→worker on
// dispatch, proxy and watch traffic, and stamped into log lines and
// error bodies — one ID follows a submission across the fleet.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds client-supplied request IDs; longer (or
// malformed) values are replaced, not truncated, so an ID seen in two
// logs is byte-identical.
const maxRequestIDLen = 64

type requestIDKey struct{}

// ridFallback numbers request IDs if the system randomness source
// fails (never in practice; the counter keeps IDs unique regardless).
var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("rid-%016x", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied ID is acceptable:
// non-empty, bounded, and limited to [A-Za-z0-9._-] so it is safe to
// echo into headers and key=value logs unquoted.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID ("" when none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
