package trace

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/job"
)

func sameJob(a, b *job.Job) bool {
	return a.ID == b.ID && a.User == b.User && a.Cores == b.Cores &&
		a.Submit == b.Submit && a.Runtime == b.Runtime && a.Walltime == b.Walltime
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Kind: MedianJob, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Kind: MedianJob, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !sameJob(a[i], b[i]) {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Generate(Config{Kind: MedianJob, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !sameJob(a[i], c[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateMedianShape(t *testing.T) {
	jobs, err := Generate(Config{Kind: MedianJob, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(jobs, 80640*3600)
	// Section VII-B: 69% small-short, 0.1% huge, overloaded queue,
	// walltimes overestimated by ~4 orders of magnitude.
	if s.SmallShort < 0.55 || s.SmallShort > 0.82 {
		t.Errorf("small-short fraction = %.3f, want near 0.69", s.SmallShort)
	}
	if s.Huge > 0.02 {
		t.Errorf("huge fraction = %.4f, want about 0.001", s.Huge)
	}
	capacity := int64(80640) * MedianJob.Duration()
	if s.TotalCoreSec < capacity*3/2 {
		t.Errorf("total work %d core-sec < 1.5x capacity %d: not overloaded", s.TotalCoreSec, capacity)
	}
	if s.MedianOverEst < 500 {
		t.Errorf("median walltime overestimation = %.0fx, want >> 500x", s.MedianOverEst)
	}
	if s.BacklogAtuZero == 0 {
		t.Error("no backlog at t=0")
	}
	if s.MaxCores > 80640 {
		t.Errorf("a job exceeds the machine: %d cores", s.MaxCores)
	}
	if s.DistinctUsers < 10 {
		t.Errorf("only %d distinct users", s.DistinctUsers)
	}
}

func TestGenerateKindContrast(t *testing.T) {
	small, err := Generate(Config{Kind: SmallJob, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(Config{Kind: BigJob, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ss := Summarize(small, 80640*3600)
	bs := Summarize(big, 80640*3600)
	if ss.SmallShort <= bs.SmallShort {
		t.Errorf("smalljob small fraction %.3f <= bigjob %.3f", ss.SmallShort, bs.SmallShort)
	}
	if len(small) <= len(big) {
		t.Errorf("smalljob has %d jobs, bigjob %d: small-dominated interval should need more jobs",
			len(small), len(big))
	}
}

func TestGenerate24h(t *testing.T) {
	jobs, err := Generate(Config{Kind: Day24h, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(jobs, 80640*3600)
	if s.HorizonSec > 24*3600 {
		t.Errorf("submissions beyond the 24 h interval: %d", s.HorizonSec)
	}
	capacity := int64(80640) * Day24h.Duration()
	if s.TotalCoreSec < capacity*3/2 {
		t.Errorf("24 h interval underloaded: %d < %d", s.TotalCoreSec, capacity*3/2)
	}
}

func TestGenerateSortedAndValid(t *testing.T) {
	jobs, err := Generate(Config{Kind: BigJob, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if i > 0 && jobs[i-1].Submit > j.Submit {
			t.Fatalf("jobs not sorted by submit at %d", i)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Kind: MedianJob, DurationSec: -5}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := Generate(Config{Kind: MedianJob, Cores: -1}); err == nil {
		t.Error("negative cores accepted")
	}
	if _, err := Generate(Config{Kind: MedianJob, BacklogFraction: 2}); err == nil {
		t.Error("backlog > 1 accepted")
	}
	if _, err := Generate(Config{Kind: MedianJob, LoadFactor: -1}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestGenerateSmallMachine(t *testing.T) {
	jobs, err := Generate(Config{Kind: MedianJob, Seed: 3, Cores: 192, DurationSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs for small machine")
	}
	for _, j := range jobs {
		if j.Cores > 192 {
			t.Fatalf("job wider than machine: %d cores", j.Cores)
		}
	}
}

func TestKindParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"medianjob", MedianJob}, {"median", MedianJob},
		{"smalljob", SmallJob}, {"small", SmallJob},
		{"bigjob", BigJob}, {"big", BigJob},
		{"24h", Day24h}, {"day", Day24h},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v,%v", tc.in, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
	if MedianJob.String() != "medianjob" || Day24h.String() != "24h" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind string wrong")
	}
	if MedianJob.Duration() != 5*3600 || Day24h.Duration() != 24*3600 {
		t.Error("durations wrong")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	jobs, err := Generate(Config{Kind: SmallJob, Seed: 21, Cores: 1024, DurationSec: 1800})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, "synthetic test trace\nline two"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.Cores != b.Cores || a.Submit != b.Submit ||
			a.Runtime != b.Runtime || a.Walltime != b.Walltime || a.User != b.User {
			t.Fatalf("job %d mismatch:\n  wrote %+v\n  read  %+v", i, a, b)
		}
	}
}

func TestReadSWFSkipsAndFilters(t *testing.T) {
	in := `; Comment header
; Another comment

1 0 -1 100 64 -1 -1 64 3600 -1 1 5 -1 -1 -1 -1 -1 -1
2 10 -1 -1 64 -1 -1 64 3600 -1 0 5 -1 -1 -1 -1 -1 -1
3 20 -1 50 -1 -1 -1 32 -1 -1 1 6 -1 -1 -1 -1 -1 -1
4 -5 -1 50 0 -1 -1 -1 3600 -1 1 6 -1 -1 -1 -1 -1 -1
`
	jobs, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 has unknown runtime (skipped), job 4 has no procs (skipped).
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != 1 || jobs[0].Cores != 64 || jobs[0].Runtime != 100 || jobs[0].Walltime != 3600 {
		t.Errorf("job 1 parsed wrong: %+v", jobs[0])
	}
	// Job 3: procs falls back to requested, walltime clamps up to runtime.
	if jobs[1].Cores != 32 || jobs[1].Walltime != 50 {
		t.Errorf("job 3 parsed wrong: %+v", jobs[1])
	}
	if jobs[0].User != "user5" {
		t.Errorf("user parsed wrong: %q", jobs[0].User)
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadSWF(strings.NewReader("a b c d e f g h i j k l m n o p q r\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestReadSWFSortsBySubmit(t *testing.T) {
	in := `2 100 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1
1 50 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1
`
	jobs, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != 1 || jobs[1].ID != 2 {
		t.Errorf("not sorted by submit: %v %v", jobs[0].ID, jobs[1].ID)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 1000)
	if s.Jobs != 0 || s.SmallShort != 0 || s.MedianOverEst != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeZeroRuntime(t *testing.T) {
	jobs := []*job.Job{{ID: 1, Cores: 4, Runtime: 0, Walltime: 100}}
	s := Summarize(jobs, 1000)
	if s.ZeroRuntimeJobs != 1 {
		t.Errorf("ZeroRuntimeJobs = %d", s.ZeroRuntimeJobs)
	}
}

func TestLibraryKindsParseAndDuration(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"diurnal", Diurnal}, {"bursty", Bursty}, {"burst", Bursty},
		{"heavytail", HeavyTail}, {"heavy", HeavyTail},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v,%v", tc.in, got, err)
		}
	}
	if Diurnal.String() != "diurnal" || Bursty.String() != "bursty" || HeavyTail.String() != "heavytail" {
		t.Error("library Kind strings wrong")
	}
	if Diurnal.Duration() != 24*3600 {
		t.Error("diurnal interval must span a full day")
	}
	if Bursty.Duration() != 5*3600 || HeavyTail.Duration() != 5*3600 {
		t.Error("bursty/heavytail intervals must be 5 h")
	}
}

// submitHistogram buckets submit times into nBuckets over [0, dur).
func submitHistogram(jobs []*job.Job, dur int64, nBuckets int) []int {
	h := make([]int, nBuckets)
	for _, j := range jobs {
		i := int(j.Submit * int64(nBuckets) / dur)
		if i >= nBuckets {
			i = nBuckets - 1
		}
		h[i]++
	}
	return h
}

func TestGenerateDiurnalShape(t *testing.T) {
	cfg := Config{Kind: Diurnal, Seed: 1005, Cores: 1440}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || !sameJob(a[0], b[0]) || !sameJob(a[len(a)-1], b[len(b)-1]) {
		t.Fatal("diurnal generation not deterministic")
	}
	// Day/night contrast: mid-day (10h-14h) must out-submit the
	// midnight trough (22h-24h plus 0h-2h, excluding the t=0 backlog).
	var arrived []*job.Job
	for _, j := range a {
		if j.Submit > 0 {
			arrived = append(arrived, j)
		}
	}
	h := submitHistogram(arrived, Diurnal.Duration(), 12)
	day := h[5] + h[6]
	night := h[0] + h[11]
	if day < 3*night {
		t.Errorf("diurnal contrast too weak: day %d vs night %d", day, night)
	}
	for i, j := range a {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
	}
}

func TestGenerateBurstyShape(t *testing.T) {
	jobs, err := Generate(Config{Kind: Bursty, Seed: 1006, Cores: 1440})
	if err != nil {
		t.Fatal(err)
	}
	// Storms: with >=70% of jobs inside bursts of ~6 min around at most
	// 7 centers, the busiest tenth of 1-minute buckets must hold well
	// over half the non-backlog jobs.
	dur := Bursty.Duration()
	h := submitHistogram(jobs, dur, int(dur/60))
	total := 0
	for _, n := range h[1:] { // bucket 0 holds the t=0 backlog
		total += n
	}
	sort.Ints(h[1:])
	top := 0
	for _, n := range h[len(h)-len(h)/10:] {
		top += n
	}
	if top < total/2 {
		t.Errorf("bursty arrivals too uniform: top decile holds %d of %d", top, total)
	}
}

func TestGenerateHeavyTailShape(t *testing.T) {
	jobs, err := Generate(Config{Kind: HeavyTail, Seed: 1007, Cores: 80640})
	if err != nil {
		t.Fatal(err)
	}
	ones, wide := 0, 0
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Cores == 1 {
			ones++
		}
		if j.Cores >= 1000 {
			wide++
		}
	}
	// Pareto widths: single-core jobs dominate, yet a real tail of
	// >=1000-core jobs exists.
	if ones < len(jobs)/2 {
		t.Errorf("heavytail: only %d/%d single-core jobs", ones, len(jobs))
	}
	if wide == 0 {
		t.Error("heavytail: no wide-tail jobs at all")
	}
}

func TestLibraryWorkloads(t *testing.T) {
	lib := LibraryWorkloads()
	if len(lib) != 7 {
		t.Fatalf("LibraryWorkloads returned %d configs", len(lib))
	}
	seen := map[Kind]bool{}
	for _, w := range lib {
		seen[w.Kind] = true
	}
	for _, k := range []Kind{MedianJob, SmallJob, BigJob, Day24h, Diurnal, Bursty, HeavyTail} {
		if !seen[k] {
			t.Errorf("kind %v missing from LibraryWorkloads()", k)
		}
	}
}

func TestWorkloadsCoverAllKinds(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("Workloads returned %d configs", len(ws))
	}
	seen := map[Kind]bool{}
	for _, w := range ws {
		seen[w.Kind] = true
	}
	for _, k := range []Kind{MedianJob, SmallJob, BigJob, Day24h} {
		if !seen[k] {
			t.Errorf("kind %v missing from Workloads()", k)
		}
	}
}
