package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Scheduler errors. Enqueue classifies them so the HTTP layer can map a
// full queue to 503 without string matching.
var (
	// ErrQueueFull means the backlog bound is hit; the caller should
	// refuse the submission rather than buffer without bound.
	ErrQueueFull = errors.New("service: scheduler queue full")
	// ErrSchedulerClosed means Shutdown already stopped intake.
	ErrSchedulerClosed = errors.New("service: scheduler closed")
)

// Scheduler is the dispatch seam between the service's submission path
// and wherever work actually executes. The server enqueues each fresh
// run id exactly once; the backend calls its executor once per accepted
// id, in FIFO order, on a bounded number of slots. Two backends ship —
// the in-process pool the single daemon runs on (NewPoolScheduler) and
// the retrying dispatcher the fleet gateway routes through
// (NewRetryScheduler) — and both must pass the schedtest conformance
// suite (internal/service/schedtest), the same way RunStore backends
// share storetest.
//
// Executors are handed opaque ids, not run state: cancellation is the
// executor's concern (executing a cancelled id must be a cheap no-op),
// which keeps the scheduler free of run lifecycle knowledge.
type Scheduler interface {
	// Enqueue accepts one id for execution. ErrQueueFull when the
	// backlog bound is hit, ErrSchedulerClosed after Shutdown.
	Enqueue(id string) error
	// Queued reports the accepted-but-not-yet-executing backlog.
	Queued() int
	// Shutdown stops intake and waits for the backlog and in-flight
	// executions to drain. When ctx ends first it returns ctx.Err()
	// while the backend keeps draining in the background — callers that
	// hard-cancel their executors may call Shutdown again to wait for
	// the unwound slots.
	Shutdown(ctx context.Context) error
}

// fifoScheduler is the shared FIFO core: a mutex/cond guarded list
// drained by a fixed pool of slot goroutines. The retry flavor
// re-enqueues ids whose executor errored after a delay (retries bypass
// the depth bound — they are work already accepted, not new intake).
type fifoScheduler struct {
	exec  func(id string) error
	depth int
	// retryDelay > 0 turns executor errors into delayed re-enqueues;
	// 0 makes errors final (the executor records failures itself).
	retryDelay time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	list   []string
	closed bool
	// onRetry, when set, fires once per delayed re-enqueue (under mu) —
	// the gateway counts dispatch retries through it.
	onRetry func()

	wg     sync.WaitGroup // slot goroutines
	timers sync.WaitGroup // pending retry re-enqueues
}

// NewPoolScheduler is the in-process backend: a bounded FIFO queue
// drained by `workers` slots calling exec directly. Executor errors are
// final — a run that fails records its failure on itself, and retrying
// locally would re-run identical physics to an identical failure.
func NewPoolScheduler(workers, depth int, exec func(id string) error) Scheduler {
	return newFIFO(workers, depth, 0, exec)
}

// NewRetryScheduler is the distributed backend the fleet gateway
// dispatches through: exec routes an id to a remote worker, and a
// dispatch error (no live workers, a worker that died mid-handoff)
// re-enqueues the id after delay, indefinitely — queued work survives
// empty-fleet windows and worker churn. Permanent verdicts are the
// executor's job: it returns nil for ids that no longer need dispatch
// (cancelled, already assigned, refused by a healthy worker).
func NewRetryScheduler(workers, depth int, delay time.Duration, exec func(id string) error) Scheduler {
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	return newFIFO(workers, depth, delay, exec)
}

func newFIFO(workers, depth int, retryDelay time.Duration, exec func(id string) error) *fifoScheduler {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 256
	}
	f := &fifoScheduler{exec: exec, depth: depth, retryDelay: retryDelay}
	f.cond = sync.NewCond(&f.mu)
	for w := 0; w < workers; w++ {
		f.wg.Add(1)
		go f.slot()
	}
	return f
}

func (f *fifoScheduler) slot() {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		for len(f.list) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.list) == 0 {
			// closed and drained — the slot retires. Pending retry
			// timers drop their ids on close, so no append races this
			// exit.
			f.mu.Unlock()
			return
		}
		id := f.list[0]
		f.list = f.list[1:]
		f.mu.Unlock()

		err := f.exec(id)
		if err != nil && f.retryDelay > 0 {
			f.timers.Add(1)
			go func(id string) {
				defer f.timers.Done()
				time.Sleep(f.retryDelay)
				f.mu.Lock()
				if !f.closed {
					f.list = append(f.list, id)
					if f.onRetry != nil {
						f.onRetry()
					}
					f.cond.Broadcast()
				}
				f.mu.Unlock()
			}(id)
		}
	}
}

// SetRetryHook registers a callback fired once per retry re-enqueue.
// It lives on the concrete type, not the Scheduler interface — the
// interface stays lifecycle-only, and observers type-assert for it.
// The hook runs with the scheduler lock held; it must not call back in.
func (f *fifoScheduler) SetRetryHook(fn func()) {
	f.mu.Lock()
	f.onRetry = fn
	f.mu.Unlock()
}

// Enqueue accepts one id; ErrQueueFull past the depth bound.
func (f *fifoScheduler) Enqueue(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrSchedulerClosed
	}
	if len(f.list) >= f.depth {
		return ErrQueueFull
	}
	f.list = append(f.list, id)
	f.cond.Broadcast()
	return nil
}

// Queued reports the waiting backlog.
func (f *fifoScheduler) Queued() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.list)
}

// Shutdown stops intake and waits for the backlog, in-flight executions
// and pending retry timers to settle; on ctx expiry it returns ctx.Err()
// and may be called again to keep waiting.
func (f *fifoScheduler) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()

	done := make(chan struct{})
	go func() {
		f.timers.Wait()
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
