package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// newAuthServer boots an authenticated daemon with three tenants:
// alice (1 live run, throttled), bob (unlimited) and ops (admin).
func newAuthServer(t *testing.T) (*service.Server, string) {
	t.Helper()
	auth, err := service.NewAuth([]service.TenantConfig{
		{Name: "alice", Token: "tok-alice", MaxQueued: 1},
		{Name: "bob", Token: "tok-bob"},
		{Name: "ratey", Token: "tok-ratey", RatePerMin: 1, Burst: 1},
		{Name: "ops", Token: "tok-ops", Admin: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, service.Config{Workers: 2, Auth: auth})
	return s, c.Base
}

func authClient(base, token string) *service.Client {
	c := service.NewClient(base)
	c.PollInterval = 20 * time.Millisecond
	c.Token = token
	return c
}

func TestAuthRequired(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()

	// Every API endpoint rejects missing and invalid tokens with 401
	// and a challenge; the liveness probe stays open.
	for _, token := range []string{"", "tok-wrong"} {
		c := authClient(base, token)
		_, _, err := c.Submit(ctx, fastSpec("auth"))
		apiErr, ok := err.(*service.Error)
		if !ok || apiErr.Status != 401 {
			t.Fatalf("token %q: submit error = %v, want 401", token, err)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Errorf("unauthenticated stats status = %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Errorf("WWW-Authenticate = %q, want a Bearer challenge", got)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz behind auth = %d, want open 200", resp.StatusCode)
	}

	// A valid token submits, and the run is accounted to its tenant.
	c := authClient(base, "tok-bob")
	v, _, err := c.Submit(ctx, fastSpec("auth"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "bob" {
		t.Errorf("run tenant = %q, want bob", v.Tenant)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaMaxQueued(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	alice := authClient(base, "tok-alice")

	// alice's quota is one live run; park a long one.
	long, _, err := alice.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Cancel(ctx, long.ID)

	_, _, err = alice.Submit(ctx, fastSpec("quota-over"))
	apiErr, ok := err.(*service.Error)
	if !ok || apiErr.Status != 429 {
		t.Fatalf("over-quota submit error = %v, want 429", err)
	}

	// The HTTP response carries a Retry-After the client can honor.
	resp := rawSubmit(t, base, "tok-alice", fastSpec("quota-over2"))
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("raw over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}

	// Dedupe into the existing live run is free: identical physics
	// costs the pool nothing, so hits never count against the quota.
	v, hit, err := alice.Submit(ctx, longSpec())
	if err != nil || !hit || v.ID != long.ID {
		t.Errorf("same-spec submit over quota: v=%+v hit=%v err=%v, want a cache hit", v, hit, err)
	}

	// Another tenant is not throttled by alice's quota.
	bob := authClient(base, "tok-bob")
	bv, _, err := bob.Submit(ctx, fastSpec("quota-bob"))
	if err != nil {
		t.Fatalf("bob throttled by alice's quota: %v", err)
	}
	if _, err := bob.Wait(ctx, bv.ID, nil); err != nil {
		t.Fatal(err)
	}

	// Once alice's run is gone, her quota frees up.
	if _, err := alice.Cancel(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, alice, long.ID)
	freed, _, err := alice.Submit(ctx, fastSpec("quota-freed"))
	if err != nil {
		t.Fatalf("submit after freeing quota: %v", err)
	}
	if _, err := alice.Wait(ctx, freed.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimit(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	ratey := authClient(base, "tok-ratey")

	v, _, err := ratey.Submit(ctx, fastSpec("rate-1"))
	if err != nil {
		t.Fatal(err)
	}
	// 1/min with burst 1: the second submission inside the same minute
	// is refused — even a would-be cache hit, since the rate guards the
	// endpoint, not the execution.
	resp := rawSubmit(t, base, "tok-ratey", fastSpec("rate-1"))
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("second submission status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want 1..60 seconds", resp.Header.Get("Retry-After"))
	}
	// Reads are not rate limited.
	if _, err := ratey.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelOwnership(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	bob, alice, ops := authClient(base, "tok-bob"), authClient(base, "tok-alice"), authClient(base, "tok-ops")

	v, _, err := bob.Submit(ctx, fastSpec("owned"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = alice.Cancel(ctx, v.ID)
	apiErr, ok := err.(*service.Error)
	if !ok || apiErr.Status != 403 {
		t.Fatalf("cross-tenant cancel error = %v, want 403", err)
	}
	if _, err := ops.Cancel(ctx, v.ID); err != nil {
		t.Errorf("admin cancel: %v", err)
	}
	if _, err := bob.Cancel(ctx, v.ID); err != nil {
		t.Errorf("owner cancel: %v", err)
	}
}

// rawSubmit posts a spec with a raw HTTP client so headers are
// observable.
func rawSubmit(t *testing.T, base, token string, spec sim.RunSpec) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := spec.EncodeJSON(&body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/runs", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitTerminal polls until the run leaves the live tier.
func waitTerminal(t *testing.T, c *service.Client, id string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s", id, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestListPaginationHTTP drives the list API end to end: filters,
// limit/cursor walking, the empty page past the end, and malformed
// parameters as 400s.
func TestListPaginationHTTP(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()

	const n = 5
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, _, err := c.Submit(ctx, fastSpec(fmt.Sprintf("page-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Walk in pages of 2: 2 + 2 + 1, then the cursor runs dry.
	var walked []string
	cursor := ""
	for page := 0; ; page++ {
		if page > n {
			t.Fatal("pagination did not terminate")
		}
		runs, next, err := c.List(ctx, service.ListFilter{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range runs {
			walked = append(walked, v.ID)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if strings.Join(walked, ",") != strings.Join(ids, ",") {
		t.Errorf("paged walk = %v, want submission order %v", walked, ids)
	}

	// A cursor past the end answers an empty page, not an error.
	runs, next, err := c.List(ctx, service.ListFilter{Limit: 2, Cursor: "999999"})
	if err != nil || len(runs) != 0 || next != "" {
		t.Errorf("cursor past end: runs=%d next=%q err=%v", len(runs), next, err)
	}
	// An empty store answers an empty page too.
	runs, _, err = c.List(ctx, service.ListFilter{State: "failed"})
	if err != nil || len(runs) != 0 {
		t.Errorf("no-match filter: runs=%d err=%v", len(runs), err)
	}
	// Name filtering narrows to one.
	runs, _, err = c.List(ctx, service.ListFilter{Name: "page-3"})
	if err != nil || len(runs) != 1 || runs[0].ID != ids[3] {
		t.Errorf("name filter = %+v, err=%v", runs, err)
	}

	// Malformed paging parameters are the caller's 400, never a silent
	// full listing.
	for _, q := range []string{"cursor=banana", "limit=-2", "limit=nope", "since=yesterday", "until=%3f"} {
		resp, err := http.Get(c.Base + "/v1/runs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET /v1/runs?%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestListTenantScoping pins the listing's visibility rules on an
// authenticated daemon: non-admin tokens see their own tenant only —
// by default and by explicit name — and get a 403 (not an empty page)
// for any other tenant or the "all" pseudo-tenant; admin tokens keep
// the unscoped semantics.
func TestListTenantScoping(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	alice := authClient(base, "tok-alice")
	bob := authClient(base, "tok-bob")
	ops := authClient(base, "tok-ops")

	va, _, err := alice.Submit(ctx, fastSpec("scope-alice"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Wait(ctx, va.ID, nil); err != nil {
		t.Fatal(err)
	}
	vb, _, err := bob.Submit(ctx, fastSpec("scope-bob"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Wait(ctx, vb.ID, nil); err != nil {
		t.Fatal(err)
	}

	onlyTenant := func(runs []service.RunView, tenant string) bool {
		for _, r := range runs {
			if r.Tenant != tenant {
				return false
			}
		}
		return true
	}
	hasRun := func(runs []service.RunView, id string) bool {
		for _, r := range runs {
			if r.ID == id {
				return true
			}
		}
		return false
	}

	// Default and explicit-own listings are scoped to the caller.
	for _, f := range []service.ListFilter{{}, {Tenant: "alice"}} {
		runs, _, err := alice.List(ctx, f)
		if err != nil {
			t.Fatalf("alice list %+v: %v", f, err)
		}
		if !onlyTenant(runs, "alice") || !hasRun(runs, va.ID) || hasRun(runs, vb.ID) {
			t.Errorf("alice list %+v leaked: %+v", f, runs)
		}
	}

	// Any other tenant — or "all" — is refused outright.
	for _, tn := range []string{"bob", "all", "nosuch"} {
		_, _, err := alice.List(ctx, service.ListFilter{Tenant: tn})
		if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 403 {
			t.Errorf("alice list tenant=%q error = %v, want 403", tn, err)
		}
	}

	// Admin: unscoped by default and via "all", narrowable to anyone.
	for _, f := range []service.ListFilter{{}, {Tenant: "all"}} {
		runs, _, err := ops.List(ctx, f)
		if err != nil {
			t.Fatalf("ops list %+v: %v", f, err)
		}
		if !hasRun(runs, va.ID) || !hasRun(runs, vb.ID) {
			t.Errorf("ops list %+v missing runs: %+v", f, runs)
		}
	}
	runs, _, err := ops.List(ctx, service.ListFilter{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if !onlyTenant(runs, "alice") || !hasRun(runs, va.ID) {
		t.Errorf("ops tenant filter = %+v", runs)
	}
}
