package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/sim"
)

// Golden-file regression tests for expfig's artifacts: the static
// hardware tables, a replayed time-series figure, the sweep CSV/JSON
// exports and the federation sweep figure. Output drift — a changed
// metric, a reordered column, a float formatting change — fails tier-1
// instead of waiting for someone to eyeball a figure.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/expfig -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			name, clip(got), clip(want))
	}
}

func clip(b []byte) []byte {
	const max = 2000
	if len(b) > max {
		return append(append([]byte{}, b[:max]...), []byte("...")...)
	}
	return b
}

// stripTimings zeroes the wall-clock fields of a sweep table so its
// exports are bit-stable run to run.
func stripTimings(t *experiment.Table) {
	t.Elapsed = 0
	for i := range t.Rows {
		t.Rows[i].Elapsed = 0
	}
}

func stripFedTimings(t *experiment.FederationTable) {
	t.Elapsed = 0
	for i := range t.Rows {
		t.Rows[i].Elapsed = 0
	}
}

func TestGoldenStaticFigures(t *testing.T) {
	checkGolden(t, "fig2", []byte(figures.Fig2()))
	checkGolden(t, "fig3", []byte(figures.Fig3()))
	checkGolden(t, "fig4", []byte(figures.Fig4()))
	checkGolden(t, "fig5", []byte(figures.Fig5()))
}

func TestGoldenTimeSeriesFigure(t *testing.T) {
	r := replay.Run(replay.Fig7bScenario(2))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	checkGolden(t, "fig7b_2racks", []byte(figures.TimeSeries(r, 96, 14)))
}

// TestGoldenSweepExports pins the single-cluster sweep artifacts: the
// ASCII comparison and the CSV/JSON exports of a small deterministic
// grid.
func TestGoldenSweepExports(t *testing.T) {
	tab := experiment.Runner{Workers: 2}.Run("golden", replay.AblationGroupingScenarios(2))
	if errs := tab.Errs(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	stripTimings(&tab)

	checkGolden(t, "sweep_ascii", []byte(tab.ASCII(40)))
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep_csv", csvBuf.Bytes())
	var jsonBuf bytes.Buffer
	if err := tab.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep_json", jsonBuf.Bytes())
	checkGolden(t, "sweep_fingerprint", []byte(tab.Fingerprint()+"\n"))
}

// TestGoldenFederationExports pins the federation sweep figure and its
// exports — the -fig federation artifact at reduced scale.
func TestGoldenFederationExports(t *testing.T) {
	grid := experiment.FederationGrid{
		Name:         "federation",
		MemberCounts: []int{2},
		CapFractions: []float64{0.5},
		Divisions:    []replay.Division{replay.DivideProRata, replay.DivideDemand},
		ScaleRacks:   2,
	}
	tab := experiment.RunFederation(grid, 2)
	if errs := tab.Errs(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	stripFedTimings(&tab)

	checkGolden(t, "federation_ascii", []byte(tab.ASCII(96)))
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "federation_csv", csvBuf.Bytes())
	var jsonBuf bytes.Buffer
	if err := tab.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "federation_json", jsonBuf.Bytes())
	checkGolden(t, "federation_fingerprint", []byte(tab.Fingerprint()+"\n"))
}

// TestGoldenHelp keeps the flag surface documented: a removed or
// renamed flag is an interface break someone must notice.
func TestGoldenFlagDefaults(t *testing.T) {
	var buf bytes.Buffer
	fs := flag.NewFlagSet("expfig", flag.ContinueOnError)
	fs.SetOutput(&buf)
	// Mirror main's flag set; the -fig description is registry-derived,
	// so a newly registered figure updates the golden too.
	fs.String("fig", "all", "which artifact: "+sim.Figures.Join("|")+"|all")
	fs.Int("racks", 56, "machine size in racks for the replayed figures")
	fs.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	fs.Int("width", 96, "chart width")
	fs.Int("height", 14, "chart height")
	fs.String("csv", "", "write the sweep summary table as CSV to this file")
	fs.String("json", "", "write the sweep results as JSON to this file")
	fs.String("spec", "", "run this sim.RunSpec JSON file instead of a named figure")
	fs.String("dumpspec", "", "write the selected -fig's sim.RunSpec as JSON and exit")
	fs.PrintDefaults()
	fmt.Fprintln(&buf)
	checkGolden(t, "flags", buf.Bytes())
}
