// Package figures regenerates every table and figure of the paper's
// evaluation as text: the Figure 2 power-bonus table, the Figure 3
// power/time trade-off scatter, the Figure 4 node power table, the
// Figure 5 rho table, the Figure 6/7 utilization and power time series,
// and the Figure 8 policy comparison bars. Each function returns a
// self-contained string so the same code serves cmd/expfig, the examples
// and the benchmark harness.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/ascii"
	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/replay"
)

// Fig2 renders the per-level power consumption and bonus table of
// Figure 2 for the Curie hierarchy, deriving every value from the
// cluster model rather than hard-coding the paper's numbers.
func Fig2() string {
	c := cluster.NewCurie()
	topo := c.Topology()
	prof := c.Profile()
	ov := c.Overhead()

	nodeSave := float64(prof.Max() - prof.Down())
	chassisBonus := ov.ChassisWatts + float64(prof.Down())*float64(topo.NodesPerChassis)
	chassisAccum := nodeSave*float64(topo.NodesPerChassis) + chassisBonus
	rackBonus := ov.RackWatts + chassisBonus*float64(topo.ChassisPerRack)
	rackAccum := chassisAccum*float64(topo.ChassisPerRack) + ov.RackWatts

	var b strings.Builder
	b.WriteString("Figure 2: power consumption and saved watts per switch-off level (Curie)\n\n")
	fmt.Fprintf(&b, "%-22s %-18s %-14s %s\n", "Level", "Power consumption", "Power bonus", "Accumulated saving")
	fmt.Fprintf(&b, "%-22s %-18s %-14s %s\n", "Node (down)", fmt.Sprintf("%.0f W", float64(prof.Down())), "-", "-")
	fmt.Fprintf(&b, "%-22s %-18s %-14s %.0f W\n", "Node (max)", fmt.Sprintf("%.0f W", float64(prof.Max())), "-", nodeSave)
	fmt.Fprintf(&b, "%-22s %-18s %-14s %.0f W\n",
		fmt.Sprintf("Chassis (%d nodes)", topo.NodesPerChassis),
		fmt.Sprintf("%.0f W", ov.ChassisWatts),
		fmt.Sprintf("%.0f W", chassisBonus), chassisAccum)
	fmt.Fprintf(&b, "%-22s %-18s %-14s %.0f W\n",
		fmt.Sprintf("Rack (%d chassis)", topo.ChassisPerRack),
		fmt.Sprintf("%.0f W", ov.RackWatts),
		fmt.Sprintf("%.0f W", rackBonus), rackAccum)
	fmt.Fprintf(&b, "\nWorked example (Section VI-A): saving 6600 W needs 20 scattered nodes (6880 W)\n")
	fmt.Fprintf(&b, "but one full chassis of %d nodes saves %.0f W — 2 nodes kept available.\n",
		topo.NodesPerChassis, chassisAccum)
	return b.String()
}

// Fig3 renders the maximum power versus normalized execution time
// trade-off of the four measured applications across the frequency
// ladder.
func Fig3() string {
	prof := power.CurieProfile()
	pts := apps.Figure3Points(prof)

	var b strings.Builder
	b.WriteString("Figure 3: maximum power vs normalized execution time per CPU frequency\n\n")
	fmt.Fprintf(&b, "%-10s %-9s %-12s %s\n", "App", "Freq", "Max power", "Normalized time")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10s %-9s %-12s %.3f\n", p.App, p.Freq, p.Watts, p.NormTime)
	}
	sp := make([]ascii.ScatterPoint, len(pts))
	for i, p := range pts {
		sp[i] = ascii.ScatterPoint{X: p.NormTime, Y: float64(p.Watts), Tag: p.App}
	}
	b.WriteByte('\n')
	b.WriteString(ascii.ScatterPlot(sp, 64, 18, 1, 2.4, 100, 400,
		"max watts per node (y) vs normalized execution time (x); marker = first letter of app"))
	return b.String()
}

// Fig4 renders the node power table.
func Fig4() string {
	prof := power.CurieProfile()
	var b strings.Builder
	b.WriteString("Figure 4: maximum power consumption of a Curie node per state\n\n")
	fmt.Fprintf(&b, "%-16s %s\n", "Node state", "Max power")
	fmt.Fprintf(&b, "%-16s %.0f W\n", "Switch-off", float64(prof.Down()))
	fmt.Fprintf(&b, "%-16s %.0f W\n", "Idle", float64(prof.Idle()))
	for _, f := range prof.Frequencies() {
		fmt.Fprintf(&b, "DVFS %-11s %.0f W\n", f, float64(prof.Busy(f)))
	}
	return b.String()
}

// Fig5 renders the degradation/rho/mechanism table.
func Fig5() string {
	prof := power.CurieProfile()
	var b strings.Builder
	b.WriteString("Figure 5: DVFS vs switch-off comparison on Curie per benchmark\n\n")
	fmt.Fprintf(&b, "%-14s %-8s %-8s %-12s %s\n", "Benchmark", "degmin", "rho", "Best", "Source")
	for _, r := range apps.Figure5Rows() {
		best := "-"
		if r.Name != "NA" {
			best = r.BestMechanism(prof).String()
		}
		fmt.Fprintf(&b, "%-14s %-8.2f %-+8.3f %-12s %s\n", r.Name, r.DegMin, r.Rho(prof), best, r.Source)
	}
	return b.String()
}

// TimeSeries renders the Figure 6/7 style stacked plots for a run: cores
// by frequency (plus switched-off cores) and power by category, with the
// cap overlaid.
func TimeSeries(r replay.Result, width, height int) string {
	samples := r.Samples
	if len(samples) == 0 {
		return "no samples recorded\n"
	}
	freqs := metrics.FreqsUsed(samples)
	// Ascending frequency bands, idle-floor last for the power plot.
	runeFor := map[dvfs.Freq]rune{
		dvfs.F1200: '1', dvfs.F1400: '2', dvfs.F1600: '3', dvfs.F1800: '4',
		dvfs.F2000: 'o', dvfs.F2200: '5', dvfs.F2400: '6', dvfs.F2700: '#',
	}

	var coreSeries []ascii.Series
	for _, f := range freqs {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = float64(s.CoresByFreq[f])
		}
		rn, ok := runeFor[f]
		if !ok {
			rn = '?'
		}
		coreSeries = append(coreSeries, ascii.Series{Label: f.String(), Values: vals, Rune: rn})
	}
	offVals := make([]float64, len(samples))
	for i, s := range samples {
		offVals[i] = float64(s.OffCores)
	}
	coreSeries = append(coreSeries, ascii.Series{Label: "switched-off", Values: offVals, Rune: 'x'})

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d s replayed, %d samples\n\n", r.Scenario.Name,
		r.Summary.End-r.Summary.Start, len(samples))
	b.WriteString(ascii.StackedArea(coreSeries, width, height, float64(r.Cores), 0,
		"cores by CPU frequency (top plot of the paper's figure)", "cores"))
	b.WriteByte('\n')

	// Power plot: idle floor, then per-frequency surplus, cap as ref.
	idleFloor := make([]float64, len(samples))
	surplus := make([]float64, len(samples))
	var capLine float64
	for i, s := range samples {
		idleFloor[i] = float64(s.Power)
		surplus[i] = 0
		if s.Cap > 0 {
			capLine = float64(s.Cap)
		}
	}
	powerSeries := []ascii.Series{
		{Label: "cluster draw", Values: idleFloor, Rune: '#'},
		{Label: "", Values: surplus, Rune: ' '},
	}
	b.WriteString(ascii.StackedArea(powerSeries[:1], width, height, float64(r.MaxPower), capLine,
		"cluster power draw (bottom plot; == marks the reserved cap)", "watts"))
	return b.String()
}

// Fig8 renders the normalized energy / launched jobs / work bars for a
// scenario sweep, grouped by workload the way Figure 8 stacks its rows.
func Fig8(results []replay.Result) string {
	byWorkload := map[string][]replay.Result{}
	var order []string
	for _, r := range results {
		k := r.Scenario.Workload.Kind.String()
		if _, ok := byWorkload[k]; !ok {
			order = append(order, k)
		}
		byWorkload[k] = append(byWorkload[k], r)
	}
	sort.Strings(order)

	var b strings.Builder
	b.WriteString("Figure 8: normalized energy, launched jobs and work per scenario\n")
	for _, wl := range order {
		rs := byWorkload[wl]
		fmt.Fprintf(&b, "\n== workload %s ==\n", wl)
		var energy, launched, work []ascii.Bar
		for _, r := range rs {
			label := r.Scenario.Label()
			energy = append(energy, ascii.Bar{Label: label, Value: r.Summary.NormEnergy})
			launched = append(launched, ascii.Bar{Label: label, Value: r.Summary.NormLaunched})
			work = append(work, ascii.Bar{Label: label, Value: r.Summary.NormWork})
		}
		b.WriteString(ascii.BarChart(energy, 40, 1, "Energy (normalized)"))
		b.WriteString(ascii.BarChart(launched, 40, 1, "Jobs launched (fraction of submitted)"))
		b.WriteString(ascii.BarChart(work, 40, 1, "Work (fraction of cores x duration)"))
	}
	return b.String()
}

// SummaryTable renders one row per result with the headline metrics.
func SummaryTable(results []replay.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %8s %8s %7s\n",
		"scenario", "energy", "work", "launched", "normE", "normW", "killed")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-28s ERROR: %v\n", r.Scenario.Name, r.Err)
			continue
		}
		s := r.Summary
		fmt.Fprintf(&b, "%-28s %10.3g %10.3g %6d/%-4d %8.3f %8.3f %7d\n",
			r.Scenario.Name, float64(s.EnergyJ), s.WorkCoreSec,
			s.JobsLaunched, s.JobsSubmitted, s.NormEnergy, s.NormWork, s.JobsKilled)
	}
	return b.String()
}
