package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// maxSpecBytes bounds a submission body. The largest checked-in spec is
// ~3 KB; 8 MiB leaves three orders of magnitude of headroom for huge
// generated cell lists while still bounding memory per request.
const maxSpecBytes = 8 << 20

// tenantKey carries the authenticated tenant through request contexts.
type tenantKeyType struct{}

var tenantKey tenantKeyType

// requestTenant returns the tenant the request authenticated as (the
// zero config on open daemons).
func requestTenant(r *http.Request) TenantConfig {
	tc, _ := r.Context().Value(tenantKey).(TenantConfig)
	return tc
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs                 submit a sim.RunSpec (JSON body)
//	GET    /v1/runs                 list runs (?state=&hash=&policy=&kind=
//	                                &name=&tenant=&since=&until=
//	                                &cursor=&limit= filters + paging)
//	GET    /v1/runs/{id}            status + report (?report=0 omits it)
//	DELETE /v1/runs/{id}            cancel
//	GET    /v1/runs/{id}/report     sink-rendered report (?format=json|csv|ascii)
//	GET    /v1/runs/{id}/metrics    telemetry (?series=,&from=,&to=,&res=)
//	GET    /v1/runs/{id}/series     one metric's points (?metric=&res=&from=&to=;
//	                                no params enumerates the recorded metrics)
//	GET    /v1/runs/{id}/events     progress stream (SSE)
//	POST   /v1/twin                 start a twin session (twin.Spec body)
//	GET    /v1/twin                 list twin sessions
//	GET    /v1/twin/{id}            status + spec + mutation log
//	DELETE /v1/twin/{id}            stop the session
//	POST   /v1/twin/{id}/mutations  enqueue a live mutation (twin.Mutation)
//	GET    /v1/twin/{id}/mutations  the applied-mutation log
//	GET    /v1/twin/{id}/series     twin telemetry (?metric=&res=&from=&to=)
//	GET    /v1/twin/{id}/events     session stream (SSE)
//	GET    /v1/stats                server counters
//	GET    /metrics                 Prometheus gauge exposition
//	GET    /healthz                 liveness
//
// With Config.Auth set, every endpoint except /healthz and /metrics
// requires an
// "Authorization: Bearer <token>" header naming a configured tenant;
// failures are 401 with a WWW-Authenticate challenge. Liveness stays
// open so load balancers and restart scripts need no credentials.
// Listings are tenant-scoped: non-admin tokens see only their own runs
// and get 403 for any other ?tenant= (admins may name any tenant, or
// ?tenant=all for every run).
//
// Paths are routed by hand (no 1.22 mux patterns — the module targets
// go 1.21).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/runs", s.handleRuns)
	mux.HandleFunc("/v1/runs/", s.handleRun)
	mux.HandleFunc("/v1/twin", s.handleTwins)
	mux.HandleFunc("/v1/twin/", s.handleTwin)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, s.Stats())
	})
	mux.HandleFunc("/metrics", s.handlePromMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]string{"status": "ok"})
	})
	// pprof is admin-gated: open daemons expose it (single-user, like
	// everything else), authenticated daemons require an admin token —
	// non-admin tokens get the generic 404 (profiles leak memory
	// contents; their existence is not advertised), and tokenless
	// requests never reach here (the auth wrapper's open list covers
	// only /healthz and /metrics, so /debug/* is a 401).
	mux.HandleFunc("/debug/pprof/", s.gatePprof(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.gatePprof(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.gatePprof(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", s.gatePprof(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.gatePprof(pprof.Trace))

	var h http.Handler = mux
	if s.cfg.Auth != nil {
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Liveness and the metric exposition stay open: load
			// balancers and scrapers need no credentials, and neither
			// answer carries per-tenant data.
			if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
				mux.ServeHTTP(w, r)
				return
			}
			tc, err := s.cfg.Auth.Authenticate(r.Header.Get("Authorization"))
			if err != nil {
				w.Header().Set("WWW-Authenticate", `Bearer realm="simd"`)
				writeErr(w, err)
				return
			}
			mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, tc)))
		})
	}
	// The middleware wraps the auth layer, so denied requests are
	// counted and traced like served ones.
	return obs.Middleware(h, obs.MiddlewareOptions{
		Metrics: s.met.httpMet,
		Log:     s.cfg.Logger.Component("http"),
		Route:   routeTemplate,
	})
}

// gatePprof admits pprof requests per the admin policy above.
func (s *Server) gatePprof(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Auth != nil && !requestTenant(r).Admin {
			writeErr(w, &Error{Status: 404, Msg: "not found"})
			return
		}
		h(w, r)
	}
}

// routeTemplate maps request paths to bounded metric labels: run and
// twin ids collapse to {id}, unknown subresources and paths collapse
// to catch-alls, so label cardinality stays finite no matter what
// clients probe.
func routeTemplate(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/runs", p == "/v1/twin", p == "/v1/stats",
		p == "/v1/fleet", p == "/v1/fleet/join", p == "/v1/fleet/heartbeat",
		p == "/metrics", p == "/healthz":
		return p
	case strings.HasPrefix(p, "/debug/pprof/"):
		return "/debug/pprof/"
	case strings.HasPrefix(p, "/v1/runs/"):
		return subTemplate("/v1/runs/{id}", strings.TrimPrefix(p, "/v1/runs/"),
			"report", "metrics", "series", "events")
	case strings.HasPrefix(p, "/v1/twin/"):
		return subTemplate("/v1/twin/{id}", strings.TrimPrefix(p, "/v1/twin/"),
			"mutations", "series", "events")
	default:
		return "other"
	}
}

func subTemplate(base, rest string, known ...string) string {
	_, sub, _ := strings.Cut(rest, "/")
	if sub == "" {
		return base
	}
	for _, k := range known {
		if sub == k {
			return base + "/" + k
		}
	}
	return base + "/{sub}"
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		// Specs are small; a bounded body keeps a hostile or broken
		// client from ballooning the daemon's memory.
		spec, err := sim.DecodeJSON(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		if err != nil {
			writeErr(w, &Error{Status: 400, Msg: err.Error()})
			return
		}
		v, hit, err := s.SubmitTraced(r.Context(), requestTenant(r), spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		status := http.StatusCreated
		if hit {
			status = http.StatusOK // existing run; nothing created
		}
		writeJSON(w, status, submitResponse{Run: v, CacheHit: hit})
	case http.MethodGet:
		q := r.URL.Query()
		// Authorization before parameter validation: an unauthorized
		// cross-tenant probe must get its 403 even when it also carries
		// a malformed cursor — a 400 first would let an attacker use
		// validation ordering to learn which tenants exist to be denied.
		tenant := requestTenant(r)
		if err := checkTenantScope(q.Get("tenant"), s.cfg.Auth, tenant); err != nil {
			writeErr(w, err)
			return
		}
		f, err := ParseListFilter(q)
		if err != nil {
			writeErr(w, err)
			return
		}
		applyTenantScope(&f, s.cfg.Auth, tenant)
		views, next, err := s.List(f)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, 200, listResponse{Runs: views, NextCursor: next})
	default:
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
	}
}

// checkTenantScope decides whether the caller may list the requested
// tenant at all — run before any parameter parsing. On an authenticated
// daemon a non-admin caller may name only itself (or nothing); any
// other tenant — or the "all" pseudo-tenant — is a 403, not an empty
// result (silent emptiness would make a typoed tenant name
// indistinguishable from an idle one). Admins may name anyone; open
// daemons are unscoped.
func checkTenantScope(requested string, auth *Auth, tenant TenantConfig) error {
	if auth == nil || tenant.Admin {
		return nil
	}
	switch requested {
	case "", tenant.Name:
		return nil
	default:
		return &Error{Status: 403, Msg: "service: listing other tenants' runs requires an admin token"}
	}
}

// applyTenantScope pins the validated filter to the caller's
// visibility: non-admin listings are always scoped to the caller's
// tenant, and an admin's "all" pseudo-tenant clears the filter.
// checkTenantScope must have passed first.
func applyTenantScope(f *ListFilter, auth *Auth, tenant TenantConfig) {
	if auth == nil {
		return
	}
	if tenant.Admin {
		if f.Tenant == "all" {
			f.Tenant = ""
		}
		return
	}
	f.Tenant = tenant.Name
}

// submitResponse wraps a submission's run with the dedup verdict.
type submitResponse struct {
	Run      RunView `json:"run"`
	CacheHit bool    `json:"cache_hit"`
}

// listResponse is one page of the runs listing. NextCursor resumes the
// listing where this page ended; empty means the listing is exhausted.
type listResponse struct {
	Runs       []RunView `json:"runs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, &Error{Status: 404, Msg: "missing run id"})
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			v, err := s.GetAs(requestTenant(r), id, r.URL.Query().Get("report") != "0")
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		case http.MethodDelete:
			v, err := s.CancelAs(requestTenant(r), id)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		default:
			writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		}
	case "report":
		s.handleReport(w, r, id)
	case "metrics":
		s.handleMetrics(w, r, id)
	case "series":
		s.handleSeries(w, r, id)
	case "events":
		s.handleEvents(w, r, id)
	default:
		writeErr(w, &Error{Status: 404, Msg: fmt.Sprintf("unknown resource %q", sub)})
	}
}

// handleReport streams the run's report through the named sink — the
// exact pipeline the CLIs print with, so a remote client's output is
// byte-compatible with a local run's exports. Runs that survive only in
// the archive serve the rendering captured at completion.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	// Ownership first: a foreign tenant's probe answers the unknown-run
	// 404 before any report machinery runs.
	if _, err := s.GetAs(requestTenant(r), id, false); err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	// An unknown format is the client's mistake: classify it before any
	// report bytes stream, so the 400 carries the registry enumeration.
	if _, err := sim.Sinks.Lookup(format); err != nil {
		writeErr(w, &Error{Status: 400, Msg: err.Error()})
		return
	}
	width, err := intParam("width", q.Get("width"))
	if err != nil {
		writeErr(w, err)
		return
	}
	height, err := intParam("height", q.Get("height"))
	if err != nil {
		writeErr(w, err)
		return
	}
	opt := sim.SinkOptions{Width: width, Height: height}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := s.RenderReport(id, format, opt, w); err != nil {
		var apiErr *Error
		if errors.As(err, &apiErr) {
			// Nothing was streamed yet on API errors; the header above
			// is overridden by writeErr's JSON.
			writeErr(w, err)
			return
		}
		// The sink failed mid-stream: part of a 200 response is already
		// out. Abort the connection so the client sees a failed
		// transfer instead of saving a partial report that ends in an
		// appended error object.
		panic(http.ErrAbortHandler)
	}
}

// metricsResponse is the wire form of a telemetry query.
type metricsResponse struct {
	Run    string         `json:"run"`
	Series []seriesResult `json:"series"`
	// Available lists the run's series names when no ?series= was
	// asked for (discovery).
	Available []string `json:"available,omitempty"`
	// DroppedSeries names series the per-run cap refused: the run was
	// wider than the configured store and its telemetry is partial
	// (raise -tsdb-series / tsdb.Options.MaxSeriesPerRun).
	DroppedSeries []string `json:"dropped_series,omitempty"`
}

type seriesResult struct {
	Name string `json:"name"`
	// RawPerPoint is the downsampling factor of the level that answered
	// (1 = raw samples).
	RawPerPoint int          `json:"raw_per_point"`
	Points      []tsdb.Point `json:"points"`
}

// runSeries resolves a run's telemetry wherever it lives: the hot tier,
// or — for runs evicted from it (or completed by an earlier process) —
// the archived snapshot, restored into the live store on first query.
func (s *Server) runSeries(id string) (*tsdb.Run, error) {
	for {
		if rs := s.tsdb.Lookup(id); rs != nil {
			return rs, nil
		}
		// Single-flight the archive restore: concurrent first queries for
		// an evicted run would each deserialize the snapshot and race
		// tsdb.Restore (last install wins, earlier handles orphaned).
		// One caller claims the id; the rest wait and re-Lookup.
		s.restoreMu.Lock()
		if ch, ok := s.restoring[id]; ok {
			s.restoreMu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.restoring[id] = ch
		s.restoreMu.Unlock()

		rs, err := func() (*tsdb.Run, error) {
			defer func() {
				s.restoreMu.Lock()
				delete(s.restoring, id)
				close(ch)
				s.restoreMu.Unlock()
			}()
			if rs := s.tsdb.Lookup(id); rs != nil {
				return rs, nil
			}
			rec, ok := s.storeRecord(id)
			if !ok || rec.Telemetry == nil {
				return nil, nil
			}
			rs, err := s.tsdb.Restore(id, rec.Telemetry)
			if err != nil {
				return nil, &Error{Status: 500, Msg: fmt.Sprintf("restoring archived telemetry: %v", err)}
			}
			return rs, nil
		}()
		if err != nil {
			return nil, err
		}
		if rs == nil {
			return nil, &Error{Status: 404, Msg: fmt.Sprintf("run %s recorded no telemetry", id)}
		}
		return rs, nil
	}
}

// timeRangeParams parses the shared from/to/res query parameters; any
// malformed value is a 400.
func timeRangeParams(q url.Values) (from, to, res int64, err error) {
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"from", &from}, {"to", &to}, {"res", &res}} {
		v, perr := int64Param(p.name, q.Get(p.name))
		if perr != nil {
			return 0, 0, 0, perr
		}
		*p.dst = v
	}
	return from, to, res, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	if _, err := s.GetAs(requestTenant(r), id, false); err != nil {
		writeErr(w, err)
		return
	}
	rs, err := s.runSeries(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	resp := metricsResponse{Run: id, DroppedSeries: rs.Dropped()}
	names := q.Get("series")
	if names == "" {
		resp.Available = rs.Series()
		resp.Series = []seriesResult{}
		writeJSON(w, 200, resp)
		return
	}
	from, to, res, err := timeRangeParams(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		pts, per, err := rs.Query(name, from, to, res)
		if err != nil {
			writeErr(w, &Error{Status: 404, Msg: err.Error()})
			return
		}
		resp.Series = append(resp.Series, seriesResult{Name: name, RawPerPoint: per, Points: pts})
	}
	writeJSON(w, 200, resp)
}

// SeriesResponse is the wire form of /v1/runs/{id}/series — the
// single-metric counterpart of the metrics endpoint, shaped for
// dashboard panels: one query, one metric, one points array. Without
// ?metric= it enumerates what the run recorded.
type SeriesResponse struct {
	Run string `json:"run"`
	// Metrics enumerates the run's recorded series names (discovery
	// mode, no ?metric= given).
	Metrics []string `json:"metrics,omitempty"`
	// Metric echoes the queried series name.
	Metric string `json:"metric,omitempty"`
	// RawPerPoint is the downsampling factor of the level that answered
	// (1 = raw samples).
	RawPerPoint int          `json:"raw_per_point,omitempty"`
	Points      []tsdb.Point `json:"points,omitempty"`
	// DroppedSeries names series the per-run cap refused (telemetry is
	// partial; raise -tsdb-series / tsdb.Options.MaxSeriesPerRun).
	DroppedSeries []string `json:"dropped_series,omitempty"`
}

// handleSeries serves GET /v1/runs/{id}/series?metric=&res=&from=&to=.
// It answers from wherever the run's telemetry lives — the live store
// for in-flight runs, the hot tier for recent ones, or the archive
// snapshot restored on first touch — so a dashboard needs no knowledge
// of the run's lifecycle stage. Malformed res/from/to are 400s; an
// unknown metric is a 404 naming the miss.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	if _, err := s.GetAs(requestTenant(r), id, false); err != nil {
		writeErr(w, err)
		return
	}
	rs, err := s.runSeries(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeJSON(w, 200, SeriesResponse{Run: id, Metrics: rs.Series(), DroppedSeries: rs.Dropped()})
		return
	}
	from, to, res, err := timeRangeParams(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	pts, per, err := rs.Query(metric, from, to, res)
	if err != nil {
		writeErr(w, &Error{Status: 404, Msg: err.Error()})
		return
	}
	writeJSON(w, 200, SeriesResponse{
		Run:           id,
		Metric:        metric,
		RawPerPoint:   per,
		Points:        pts,
		DroppedSeries: rs.Dropped(),
	})
}

// handleEvents streams the run's progress log as server-sent events:
// replayed from the start for late subscribers, then followed live
// until the run is terminal. Event types: queued, started, cell, done,
// failed, cancelled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	if _, err := s.GetAs(requestTenant(r), id, false); err != nil {
		writeErr(w, err)
		return
	}
	serveSSE(w, r, s.cfg.SSEKeepalive, func(ctx context.Context, emit func(Event) error) error {
		return s.Follow(ctx, id, emit)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		apiErr = &Error{Status: 500, Msg: err.Error()}
	}
	if apiErr.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(apiErr.RetryAfter.Seconds()))))
	}
	body := map[string]string{"error": apiErr.Msg}
	// Stamp the request ID into the body so a failed call is greppable
	// in the logs from the error alone (map keys encode sorted, so the
	// shape stays deterministic).
	if id := obs.ResponseRequestID(w); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, apiErr.Status, body)
}

// intParam parses an optional numeric query parameter; a malformed
// value is a 400, not a silent zero ("res=300s" must not quietly mean
// "raw resolution").
func intParam(name, s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, &Error{Status: 400, Msg: fmt.Sprintf("bad %s %q: want an integer", name, s)}
	}
	return v, nil
}

func int64Param(name, s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, &Error{Status: 400, Msg: fmt.Sprintf("bad %s %q: want an integer (seconds)", name, s)}
	}
	return v, nil
}
