package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/schedtest"
)

// Both scheduler backends pass the one conformance suite — the seam the
// single daemon and the fleet gateway share.
func TestPoolSchedulerConformance(t *testing.T) {
	schedtest.Run(t, service.NewPoolScheduler)
}

func TestRetrySchedulerConformance(t *testing.T) {
	schedtest.Run(t, func(workers, depth int, exec func(id string) error) service.Scheduler {
		return service.NewRetryScheduler(workers, depth, 2*time.Millisecond, exec)
	})
}

// TestRetrySchedulerRequeuesOnError pins the fleet robustness contract:
// a failing dispatch is retried until it sticks, so queued work
// survives windows with no live workers.
func TestRetrySchedulerRequeuesOnError(t *testing.T) {
	var (
		mu       sync.Mutex
		attempts int
	)
	done := make(chan struct{})
	s := service.NewRetryScheduler(1, 8, time.Millisecond, func(id string) error {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts < 3 {
			return errors.New("no live workers")
		}
		close(done)
		return nil
	})
	if err := s.Enqueue("flaky"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch never succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two retries, then success)", attempts)
	}
}

// TestPoolSchedulerErrorIsFinal: the in-process backend never retries —
// a failed run records its own failure, and re-running identical
// physics reproduces it.
func TestPoolSchedulerErrorIsFinal(t *testing.T) {
	var (
		mu       sync.Mutex
		attempts int
	)
	s := service.NewPoolScheduler(1, 8, func(id string) error {
		mu.Lock()
		attempts++
		mu.Unlock()
		return errors.New("boom")
	})
	if err := s.Enqueue("once"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("attempts = %d, want exactly 1", attempts)
	}
}
