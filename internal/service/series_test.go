package service_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSeriesEndpointLive pins the single-metric telemetry endpoint
// against the in-process tsdb query it fronts: identical points, the
// same downsampling verdict, discovery without parameters, and typed
// failures for unknown metrics and malformed time parameters.
func TestSeriesEndpointLive(t *testing.T) {
	s, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	v, _, err := c.Submit(ctx, fastSpec("series-live"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err = c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	rs := s.TSDB().Lookup(v.ID)
	if rs == nil {
		t.Fatal("run recorded no telemetry")
	}

	// Discovery: no ?metric= enumerates what the run recorded.
	enum, err := c.Series(ctx, v.ID, "", service.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enum.Metrics, rs.Series()) {
		t.Errorf("enumerated metrics = %v, store has %v", enum.Metrics, rs.Series())
	}
	if enum.Metric != "" || len(enum.Points) != 0 {
		t.Errorf("discovery response carries points: %+v", enum)
	}

	// Point-identity against the in-process query, raw and coarsened
	// and windowed.
	for _, q := range []service.SeriesQuery{
		{},
		{Res: 600},
		{From: 600, To: 1800},
	} {
		got, err := c.Series(ctx, v.ID, "power", q)
		if err != nil {
			t.Fatalf("series %+v: %v", q, err)
		}
		want, per, err := rs.Query("power", q.From, q.To, q.Res)
		if err != nil {
			t.Fatalf("tsdb query %+v: %v", q, err)
		}
		if got.RawPerPoint != per {
			t.Errorf("query %+v raw_per_point = %d, want %d", q, got.RawPerPoint, per)
		}
		if !reflect.DeepEqual(got.Points, want) {
			t.Errorf("query %+v points differ from in-process query (%d vs %d points)",
				q, len(got.Points), len(want))
		}
	}

	// An unknown metric is a 404, not an empty series.
	_, err = c.Series(ctx, v.ID, "no-such-metric", service.SeriesQuery{})
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Errorf("unknown metric error = %v, want 404", err)
	}
	// So is an unknown run.
	if _, err := c.Series(ctx, "nope", "power", service.SeriesQuery{}); err == nil {
		t.Error("series of unknown run succeeded")
	}

	// Malformed time parameters are 400s, never silent zeros.
	for _, bad := range []string{"res=300s", "from=abc", "to=1.5"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/series?metric=power&%s", c.Base, v.ID, bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("series with %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestSeriesArchiveRestoredAfterRestart pins the lifecycle half of the
// endpoint: a run completed by one daemon process serves the identical
// series from a fresh process over the same archive — the snapshot is
// restored into the live store on first query.
func TestSeriesArchiveRestoredAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := service.New(service.Config{Workers: 1, Archive: st})
	ts1 := httptest.NewServer(s1.Handler())
	c1 := service.NewClient(ts1.URL)
	c1.PollInterval = 20 * time.Millisecond

	v, _, err := c1.Submit(ctx, fastSpec("series-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err = c1.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	rs := s1.TSDB().Lookup(v.ID)
	if rs == nil {
		t.Fatal("run recorded no telemetry")
	}
	wantPts, wantPer, err := rs.Query("power", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantMetrics := rs.Series()

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	ts1.Close()

	// A fresh process over the same archive directory: no live runs, no
	// hot telemetry — everything must come back from the snapshot.
	st2, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := service.New(service.Config{Workers: 1, Archive: st2})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(sctx)
		ts2.Close()
	})
	c2 := service.NewClient(ts2.URL)

	enum, err := c2.Series(ctx, v.ID, "", service.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enum.Metrics, wantMetrics) {
		t.Errorf("restored metrics = %v, want %v", enum.Metrics, wantMetrics)
	}
	got, err := c2.Series(ctx, v.ID, "power", service.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if got.RawPerPoint != wantPer {
		t.Errorf("restored raw_per_point = %d, want %d", got.RawPerPoint, wantPer)
	}
	if !reflect.DeepEqual(got.Points, wantPts) {
		t.Errorf("restored points differ from the pre-restart query (%d vs %d points)",
			len(got.Points), len(wantPts))
	}
}
