package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/federation"
	"repro/internal/replay"
	"repro/internal/rjms"
)

// Report is the unified outcome of Run: exactly one of the mode
// payloads is populated (federation single runs populate both the
// one-cell table and the raw federation result). The sink pipeline
// (WriteTo/Export) encodes any Report as JSON, CSV or ASCII without
// the caller dispatching on mode.
type Report struct {
	// Spec is the normalized spec the run executed.
	Spec RunSpec
	// Mode is the executed mode (Spec.Mode after normalization).
	Mode Mode

	// Single is the one-scenario replay result with its time series.
	Single *replay.Result
	// Table is the aggregated sweep of sweep mode.
	Table *experiment.Table
	// FederationTable is the aggregated federated sweep (one row for a
	// single federation run).
	FederationTable *experiment.FederationTable
	// Federation is the raw result of a one-cell federation run — the
	// per-member, per-epoch detail the table form flattens away.
	Federation *federation.Result
}

// Errs collects the per-cell errors of whichever payload ran.
func (r Report) Errs() []error {
	switch {
	case r.Single != nil && r.Single.Err != nil:
		return []error{r.Single.Err}
	case r.Table != nil:
		return r.Table.Errs()
	case r.FederationTable != nil:
		return r.FederationTable.Errs()
	}
	return nil
}

// Progress observes finished sweep cells: done of total, the cell's
// label, its wall-clock cost and its error (nil when the cell
// succeeded). Single-mode runs report one synthetic cell.
type Progress func(done, total int, cell string, elapsed time.Duration, err error)

// Observer sees every controller a run builds, after its workload is
// loaded and before any virtual time passes: one call per scenario cell
// (labelled with the cell name) and one per federation member (labelled
// "cell/member" in multi-cell federated sweeps, the bare member name
// for a single federation). It is the facade's telemetry attach point —
// the simulation service hangs its per-run time-series collector here
// via rjms.AddObserver. Cells run concurrently across the sweep pool,
// so the callback must be safe for concurrent use.
type Observer func(cell string, ctl *rjms.Controller)

// Run executes a spec: validate, normalize, dispatch on mode. The
// context cancels runs mid-replay — single runs and in-flight sweep
// cells check it between bounded steps of virtual time, workers drain,
// and the partial report comes back along with ctx.Err(). Cell-level
// failures do not abort the run; they sit in the Report (Errs collects
// them) so partial sweeps stay inspectable.
func Run(ctx context.Context, spec RunSpec) (Report, error) {
	return RunWith(ctx, spec, nil)
}

// RunWith is Run with a progress callback (nil means silent).
func RunWith(ctx context.Context, spec RunSpec, progress Progress) (Report, error) {
	return RunObserved(ctx, spec, progress, nil)
}

// RunObserved is RunWith with a controller observer (nil means none).
func RunObserved(ctx context.Context, spec RunSpec, progress Progress, observe Observer) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	spec = spec.Normalize()
	rep := Report{Spec: spec, Mode: spec.Mode}
	if swf := spec.Workload.SWF; swf != nil && spec.Mode != ModeFederation {
		// Probe the stream once so a bad path, corrupt header, invalid
		// transform or empty window fails here, not mid-sweep. The
		// replay re-scans the file — the deliberate cost of failing
		// fast on archives.
		if err := probeSWF(spec); err != nil {
			return rep, err
		}
	}

	switch spec.Mode {
	case ModeSingle:
		sc, err := spec.singleScenario()
		if err != nil {
			return rep, err
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		var obs func(*rjms.Controller)
		if observe != nil {
			obs = func(ctl *rjms.Controller) { observe(sc.Name, ctl) }
		}
		res := replay.RunContextWith(ctx, sc, obs)
		rep.Single = &res
		if progress != nil {
			progress(1, 1, sc.Name, 0, res.Err)
		}
		// Surface the context error only when the replay actually
		// aborted on it: a cancellation racing in after the run
		// completed must not mislabel a full result.
		if res.Err != nil && errors.Is(res.Err, ctx.Err()) {
			return rep, res.Err
		}
		return rep, nil

	case ModeSweep:
		scens, err := spec.sweepScenarios()
		if err != nil {
			return rep, err
		}
		runner := experiment.Runner{Workers: spec.Workers}
		if progress != nil {
			runner.OnResult = func(done, total int, r experiment.Result) {
				progress(done, total, r.Scenario.Name, r.Elapsed, r.Err)
			}
		}
		if observe != nil {
			runner.Observe = func(i int, sc replay.Scenario, ctl *rjms.Controller) {
				observe(sc.Name, ctl)
			}
		}
		t, err := runner.RunContext(ctx, spec.sweepName(), scens)
		rep.Table = &t
		return rep, err

	case ModeFederation:
		scens, err := spec.federationScenarios()
		if err != nil {
			return rep, err
		}
		runner := experiment.FederationRunner{Workers: spec.Workers}
		if progress != nil {
			runner.OnResult = func(done, total int, r experiment.FederationResult) {
				progress(done, total, r.Scenario.Name, r.Elapsed, r.Err)
			}
		}
		if observe != nil {
			runner.Observe = func(cell, mi int, member string, ctl *rjms.Controller) {
				label := member
				if len(scens) > 1 {
					label = scens[cell].Name + "/" + member
				}
				observe(label, ctl)
			}
		}
		t, err := runner.RunContext(ctx, spec.sweepName(), scens)
		rep.FederationTable = &t
		if len(t.Rows) == 1 {
			rep.Federation = &t.Rows[0].Result
		}
		return rep, err
	}
	return rep, fmt.Errorf("sim: unknown mode %q", spec.Mode)
}

// sweepName labels the aggregated table.
func (s RunSpec) sweepName() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Mode == ModeFederation {
		return "powersched-federation"
	}
	return "powersched"
}

// probeSWF opens the stream and pulls the first record, surfacing
// bad-file and empty-window errors before any controller is built.
func probeSWF(spec RunSpec) error {
	base, err := spec.baseScenario()
	if err != nil {
		return err
	}
	fs, err := base.SWF.Open()
	if err != nil {
		return err
	}
	first, err := fs.Next()
	fs.Close()
	if err != nil {
		return err
	}
	if first == nil {
		return fmt.Errorf("no jobs in %s after the window/timescale transforms; check the window bounds (trace seconds)", base.SWF.Path)
	}
	return nil
}
