package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// specFiles globs every checked-in spec file (the examples library and
// any testdata specs).
func specFiles(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, pattern := range []string{
		"../../examples/specs/*.json",
		"../../examples/*/spec.json",
		"testdata/specs/*.json",
	} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range m {
			// twin_*.json files are twin.Spec documents (internal/twin),
			// not RunSpecs; the twin suite covers their round-trip.
			if strings.HasPrefix(filepath.Base(path), "twin_") {
				continue
			}
			out = append(out, path)
		}
	}
	if len(out) == 0 {
		t.Fatal("no checked-in spec files found; the round-trip gate is running against nothing")
	}
	return out
}

// TestCheckedInSpecsRoundTrip is the CI "specs" gate: every checked-in
// spec file must validate and re-encode to exactly its own bytes, so
// the spec library never drifts from the canonical encoder form.
func TestCheckedInSpecsRoundTrip(t *testing.T) {
	for _, path := range specFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := RoundTrips(data); err != nil {
			t.Errorf("%s: %v (regenerate with powersched/expfig -dumpspec)", path, err)
		}
		spec, err := LoadSpec(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		// Checked-in specs are stored normalized; loading must be a
		// fixed point.
		if n := spec.Normalize(); n.Mode != spec.Mode {
			t.Errorf("%s: stored spec is not normalized (mode %q -> %q)", path, spec.Mode, n.Mode)
		}
	}
}
