package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkSweep/serial-8         	       1	938212345 ns/op	        14.0 configs	         1.000 speedup	 1202345 B/op	    8132 allocs/op
BenchmarkSweep/workers4-8       	       1	301298765 ns/op	        14.0 configs	         3.113 speedup	 1219876 B/op	    8190 allocs/op
PASS
ok  	repro	2.531s
`
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || rep.CPU != "Test CPU @ 2.00GHz" {
		t.Errorf("header parsed wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSweep/serial-8" || b.Runs != 1 {
		t.Errorf("benchmark identity wrong: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 938212345, "configs": 14, "speedup": 1,
		"B/op": 1202345, "allocs/op": 8132,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if rep.Benchmarks[1].Metrics["speedup"] != 3.113 {
		t.Errorf("second speedup = %v", rep.Benchmarks[1].Metrics["speedup"])
	}
}

func TestParseRejectsCorruptLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX nope 12 ns/op\n")); err == nil {
		t.Error("bad run count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX 1 abc ns/op\n")); err == nil {
		t.Error("bad metric accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
