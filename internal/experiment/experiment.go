// Package experiment is the parallel experiment-sweep engine: it takes a
// grid of (policy x powercap schedule x workload trace x cluster
// topology) configurations, fans the cells out across a bounded worker
// pool, and aggregates the per-run metrics into one comparable table
// with CSV/JSON export and ASCII summary charts.
//
// The concurrency contract comes from the layers below: an
// rjms.Controller and its simengine.Engine are single-goroutine by
// construction, so a sweep runs one independent controller per cell and
// never shares mutable state between workers — the sweep is
// embarrassingly parallel. Every cell is seeded and replayed
// deterministically, and results are written back by cell index, so the
// aggregated table is identical at any worker count (Table.Fingerprint
// makes that checkable); only the wall-clock time changes.
//
// Typical use:
//
//	grid := experiment.Grid{
//		Workloads:    []trace.Config{{Kind: trace.SmallJob, Seed: 1002}},
//		CapFractions: []float64{0, 0.6, 0.4},
//		Policies:     []core.Policy{core.PolicyShut, core.PolicyMix},
//		Base:         replay.Scenario{ScaleRacks: 4},
//	}
//	table := experiment.Run(grid, runtime.GOMAXPROCS(0))
//	fmt.Print(table.ASCII(80))
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/rjms"
	"repro/internal/trace"
)

// Grid is the declarative form of a sweep: the axes of the cross
// product plus a base scenario carrying everything the axes do not vary
// (machine scale, ablation switches, sampling period, an explicit SWF
// job list, ...).
type Grid struct {
	// Name labels the sweep in exports; empty means "sweep".
	Name string
	// Workloads is the trace axis (kind + seed + optional duration).
	Workloads []trace.Config
	// CapFractions is the powercap axis; values outside (0, 1) stand
	// for the uncapped baseline and collapse to one PolicyNone cell
	// per workload.
	CapFractions []float64
	// Policies is the powercap-policy axis, applied at each capped
	// fraction.
	Policies []core.Policy
	// Base supplies the shared scenario fields of every cell:
	// ScaleRacks, Scattered, DynamicDVFS, KillOnOverrun, window
	// placement, explicit Jobs, and the rest of replay.Scenario.
	Base replay.Scenario
}

// Scenarios expands the grid into its scenario list (the deterministic
// cell order of replay.SweepScenarios).
func (g Grid) Scenarios() []replay.Scenario {
	return replay.SweepScenarios(g.Base, g.Workloads, g.CapFractions, g.Policies)
}

// Size returns the number of cells the grid expands to.
func (g Grid) Size() int { return len(g.Scenarios()) }

func (g Grid) name() string {
	if g.Name != "" {
		return g.Name
	}
	return "sweep"
}

// Result is one sweep cell's outcome plus its position and wall-clock
// cost.
type Result struct {
	replay.Result
	// Index is the cell's position in the expanded grid (results keep
	// this order regardless of scheduling).
	Index int
	// Elapsed is the cell's own wall-clock run time.
	Elapsed time.Duration
}

// Table is an aggregated sweep: one row per cell in grid order, plus
// the sweep-level accounting needed to judge parallel speedup.
type Table struct {
	// Name is the sweep label (Grid.Name or "sweep").
	Name string
	// Rows hold the per-cell results in grid order.
	Rows []Result
	// Workers is the pool size the sweep ran with.
	Workers int
	// Elapsed is the whole sweep's wall-clock time.
	Elapsed time.Duration
}

// Results strips the sweep bookkeeping, returning the plain replay
// results in grid order — the form the figures package consumes.
func (t Table) Results() []replay.Result {
	out := make([]replay.Result, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Result
	}
	return out
}

// Errs collects the per-cell errors (nil entries omitted).
func (t Table) Errs() []error {
	var errs []error
	for _, r := range t.Rows {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Scenario.Name, r.Err))
		}
	}
	return errs
}

// SerialCost is the summed per-cell wall-clock time — what a one-worker
// sweep would cost.
func (t Table) SerialCost() time.Duration {
	var sum time.Duration
	for _, r := range t.Rows {
		sum += r.Elapsed
	}
	return sum
}

// Speedup is the summed per-cell cost over the sweep's wall-clock: 1.0
// when serial, approaching the worker count when the cells balance.
// When workers exceed physical cores the per-cell times include
// runnable-but-descheduled waits, so this measures the pool's achieved
// concurrency; for hardware-level speedup compare whole-sweep
// wall-clock times at different worker counts (the Sweep benchmark
// does exactly that).
func (t Table) Speedup() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.SerialCost()) / float64(t.Elapsed)
}

// Runner executes sweeps on a bounded worker pool.
type Runner struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS. The pool never
	// exceeds the cell count.
	Workers int
	// OnResult, when set, observes each finished cell (serialized
	// across workers; done counts finished cells so far).
	OnResult func(done, total int, r Result)
	// Observe, when set, sees every cell's controller after its
	// workload is loaded and before any virtual time passes — the
	// attach point of telemetry collectors and invariant checkers. It
	// is called concurrently from the pool workers (one call per cell,
	// each with its own controller), so the callback must be safe for
	// concurrent use; anything it registers on the controller
	// (AddObserver) stays single-goroutine per cell.
	Observe func(index int, sc replay.Scenario, ctl *rjms.Controller)
}

// poolSize clamps a requested worker count against the cell count
// (<= 0 requests GOMAXPROCS).
func poolSize(workers, cells int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cells {
		workers = cells
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runIndexed fans fn(0..n-1) out across a bounded worker pool — the
// shared pool of the scenario and federation sweeps. fn must write its
// result to its own index; runIndexed provides no other
// synchronization. workers must already be clamped by poolSize.
//
// Cancelling ctx stops the run promptly but cleanly: the feeder stops
// handing out cells, every worker finishes (or skips) the cell it
// holds, and runIndexed only returns once the whole pool has drained —
// no goroutine outlives the call, however early the cancellation (the
// -race cancellation tests pin this). Cells fn never ran stay untouched
// for the caller to mark. Returns ctx.Err().
func runIndexed(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A cell handed over in the same instant as the cancel
				// is skipped, not run: drain the channel so the feeder
				// never blocks, but do no further work.
				if ctx.Err() == nil {
					fn(i)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// Run executes the scenario list and aggregates the table. Each cell
// builds its own controller, so cells share nothing but the immutable
// scenario inputs; rows land at their grid index regardless of which
// worker ran them or in what order they finished.
func (r Runner) Run(name string, scenarios []replay.Scenario) Table {
	t, _ := r.RunContext(context.Background(), name, scenarios)
	return t
}

// RunContext is Run with cancellation: when ctx is cancelled the pool
// stops handing out cells, drains its in-flight workers, and returns
// the partial table plus ctx.Err(). Rows whose cell never ran carry
// their scenario and ctx.Err(), so the table stays self-describing;
// rows that finished before the cancel are complete and identical to
// an uncancelled run's.
func (r Runner) RunContext(ctx context.Context, name string, scenarios []replay.Scenario) (Table, error) {
	workers := poolSize(r.Workers, len(scenarios))
	t := Table{Name: name, Rows: make([]Result, len(scenarios)), Workers: workers}
	start := time.Now()

	var (
		mu   sync.Mutex // serializes OnResult and the done counter
		done int
	)
	ran := make([]bool, len(scenarios)) // index-owned by the cell's worker
	err := runIndexed(ctx, len(scenarios), workers, func(i int) {
		t0 := time.Now()
		var observe func(*rjms.Controller)
		if r.Observe != nil {
			observe = func(ctl *rjms.Controller) { r.Observe(i, scenarios[i], ctl) }
		}
		res := replay.RunContextWith(ctx, scenarios[i], observe)
		row := Result{Result: res, Index: i, Elapsed: time.Since(t0)}
		t.Rows[i] = row
		ran[i] = true
		if r.OnResult != nil {
			mu.Lock()
			done++
			r.OnResult(done, len(scenarios), row)
			mu.Unlock()
		}
	})
	for i := range t.Rows {
		if !ran[i] {
			t.Rows[i] = Result{
				Result: replay.Result{Scenario: scenarios[i], Err: err},
				Index:  i,
			}
		}
	}
	t.Elapsed = time.Since(start)
	return t, err
}

// Run expands the grid and executes it with the given worker count.
func Run(g Grid, workers int) Table {
	return Runner{Workers: workers}.Run(g.name(), g.Scenarios())
}

// RunScenarios executes an explicit scenario list (e.g. the predefined
// figure grids of internal/replay) with the given worker count.
func RunScenarios(scenarios []replay.Scenario, workers int) Table {
	return Runner{Workers: workers}.Run("sweep", scenarios)
}
