// Command powercalc explores the Section III analytic model: given the
// cluster size, per-node power constants and a powercap, it reports how
// many nodes to switch off or slow down, the extractable work, the case
// classification and the mechanism chosen by the published rho criterion
// versus the direct work comparison.
//
// Usage:
//
//	powercalc [-n 5040] [-pmax 358] [-pmin 193] [-poff 14] [-deg 1.63] \
//	          [-lambda 0.6 | -cap <watts>] [-sweep]
//
// With -sweep the full lambda range is tabulated instead of a single
// point.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/model"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(code)
	}
}

// run is the testable entry point; the returned code is the exit
// status when err is non-nil (2 for bad parameters, 1 for an
// infeasible solve — the historical distinction).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("powercalc", flag.ExitOnError)
	var (
		n      = fs.Int("n", 5040, "cluster node count")
		pmax   = fs.Float64("pmax", 358, "per-node draw busy at nominal frequency (W)")
		pmin   = fs.Float64("pmin", 193, "per-node draw busy at minimum frequency (W)")
		poff   = fs.Float64("poff", 14, "per-node draw switched off (W)")
		deg    = fs.Float64("deg", 1.63, "walltime degradation at minimum frequency")
		lambda = fs.Float64("lambda", 0.6, "powercap as a fraction of N*Pmax")
		capW   = fs.Float64("cap", 0, "powercap in watts (overrides -lambda when > 0)")
		sweep  = fs.Bool("sweep", false, "tabulate the whole lambda range")
	)
	fs.Parse(args)

	p := model.Params{N: *n, PMax: *pmax, PMin: *pmin, POff: *poff, DegMin: *deg}
	if err := p.Validate(); err != nil {
		return 2, err
	}

	if *sweep {
		runSweep(p, out)
		return 0, nil
	}
	watts := *capW
	if watts <= 0 {
		watts = *lambda * p.MaxPower()
	}
	pl, err := model.Solve(p, watts)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "cluster: N=%d Pmax=%.0fW Pmin=%.0fW Poff=%.0fW degmin=%.2f\n",
		p.N, p.PMax, p.PMin, p.POff, p.DegMin)
	fmt.Fprintf(out, "powercap: %.0f W (lambda=%.3f, lambda_min=Pmin/Pmax=%.3f)\n",
		watts, watts/p.MaxPower(), p.LambdaMin())
	fmt.Fprintf(out, "case: %v\n", pl.Case)
	fmt.Fprintf(out, "rho (published, Fig.5): %+.4f -> paper picks %v\n", pl.Rho, pl.PaperChoice)
	fmt.Fprintf(out, "direct work comparison  -> %v (Woff=%.1f Wdvfs=%s)\n",
		pl.DerivedChoice, pl.WorkOff, fmtWork(pl.WorkDvfs))
	fmt.Fprintf(out, "optimal (continuous): Noff=%.2f Ndvfs=%.2f W=%.2f node-units\n",
		pl.NOff, pl.NDvfs, pl.Work)
	fmt.Fprintf(out, "integral plan: Noff=%d Ndvfs=%d -> draw %.0f W, work %.2f\n",
		pl.IntNOff, pl.IntNDvfs,
		model.PowerOfCounts(p, pl.IntNOff, pl.IntNDvfs),
		model.WorkOfCounts(p, pl.IntNOff, pl.IntNDvfs))
	return 0, nil
}

func fmtWork(w float64) string {
	if math.IsNaN(w) {
		return "infeasible"
	}
	return fmt.Sprintf("%.1f", w)
}

func runSweep(p model.Params, out io.Writer) {
	fmt.Fprintf(out, "%8s %14s %10s %10s %10s %8s %s\n",
		"lambda", "cap(W)", "Noff", "Ndvfs", "W", "W/N", "case")
	for l := 10; l <= 100; l += 5 {
		lambda := float64(l) / 100
		pl, err := model.SolveFraction(p, lambda)
		if err != nil {
			fmt.Fprintf(out, "%8.2f %14.0f %s\n", lambda, lambda*p.MaxPower(), err)
			continue
		}
		fmt.Fprintf(out, "%8.2f %14.0f %10.1f %10.1f %10.1f %8.3f %v\n",
			lambda, lambda*p.MaxPower(), pl.NOff, pl.NDvfs, pl.Work,
			pl.Work/float64(p.N), pl.Case)
	}
}
