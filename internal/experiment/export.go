package experiment

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// row is the stable export form of one sweep cell: scenario identity,
// headline metrics, and the cell's wall-clock cost. Field names are the
// CSV header and the JSON keys.
type row struct {
	Index        int     `json:"index"`
	Name         string  `json:"name"`
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	CapFraction  float64 `json:"cap_fraction"`
	Racks        int     `json:"racks"`
	Cores        int     `json:"cores"`
	EnergyJ      float64 `json:"energy_j"`
	WorkCoreSec  float64 `json:"work_core_sec"`
	PeakPowerW   float64 `json:"peak_power_w"`
	MeanPowerW   float64 `json:"mean_power_w"`
	Submitted    int     `json:"jobs_submitted"`
	Launched     int     `json:"jobs_launched"`
	Completed    int     `json:"jobs_completed"`
	Killed       int     `json:"jobs_killed"`
	Rescales     int     `json:"rescales"`
	MeanWaitSec  float64 `json:"mean_wait_sec"`
	MeanBSLD     float64 `json:"mean_bsld"`
	NormEnergy   float64 `json:"norm_energy"`
	NormWork     float64 `json:"norm_work"`
	NormLaunched float64 `json:"norm_launched"`
	PlanOffNodes int     `json:"plan_off_nodes"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	Error        string  `json:"error,omitempty"`
}

func exportRow(r Result) row {
	e := row{
		Index:       r.Index,
		Name:        r.Scenario.Name,
		Workload:    r.Scenario.Workload.Kind.String(),
		Policy:      r.Scenario.Policy.String(),
		CapFraction: r.Scenario.CapFraction,
		Racks:       r.Scenario.Machine().Racks,
		Cores:       r.Cores,
		ElapsedMS:   float64(r.Elapsed.Microseconds()) / 1000,
	}
	if r.Err != nil {
		e.Error = r.Err.Error()
		return e
	}
	s := r.Summary
	e.EnergyJ = float64(s.EnergyJ)
	e.WorkCoreSec = s.WorkCoreSec
	e.PeakPowerW = float64(s.PeakPower)
	e.MeanPowerW = float64(s.MeanPower)
	e.Submitted = s.JobsSubmitted
	e.Launched = s.JobsLaunched
	e.Completed = s.JobsCompleted
	e.Killed = s.JobsKilled
	e.Rescales = s.Rescales
	e.MeanWaitSec = s.MeanWaitSec
	e.MeanBSLD = s.MeanBSLD
	e.NormEnergy = s.NormEnergy
	e.NormWork = s.NormWork
	e.NormLaunched = s.NormLaunched
	e.PlanOffNodes = len(r.Plan.OffNodes)
	return e
}

// exportedTable is the JSON envelope of a sweep.
type exportedTable struct {
	Name         string  `json:"name"`
	Cells        int     `json:"cells"`
	Workers      int     `json:"workers"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	SerialCostMS float64 `json:"serial_cost_ms"`
	Speedup      float64 `json:"speedup"`
	Rows         []row   `json:"rows"`
}

func (t Table) export() exportedTable {
	out := exportedTable{
		Name:         t.Name,
		Cells:        len(t.Rows),
		Workers:      t.Workers,
		ElapsedMS:    float64(t.Elapsed.Microseconds()) / 1000,
		SerialCostMS: float64(t.SerialCost().Microseconds()) / 1000,
		Speedup:      t.Speedup(),
		Rows:         make([]row, len(t.Rows)),
	}
	for i, r := range t.Rows {
		out.Rows[i] = exportRow(r)
	}
	return out
}

// WriteJSON serializes the sweep (cells in grid order, sweep timing
// included) as indented JSON.
func (t Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.export())
}

// csvHeader is the fixed column order of WriteCSV.
var csvHeader = []string{
	"index", "name", "workload", "policy", "cap_fraction", "racks", "cores",
	"energy_j", "work_core_sec", "peak_power_w", "mean_power_w",
	"jobs_submitted", "jobs_launched", "jobs_completed", "jobs_killed",
	"rescales", "mean_wait_sec", "mean_bsld",
	"norm_energy", "norm_work", "norm_launched", "plan_off_nodes",
	"elapsed_ms", "error",
}

// WriteCSV writes the summary table — one line per cell in grid order.
// (Per-run time series stay with replay.WriteSeriesCSV; this file is
// the cross-scenario comparison.)
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, r := range t.Rows {
		e := exportRow(r)
		rec := []string{
			strconv.Itoa(e.Index), e.Name, e.Workload, e.Policy,
			f(e.CapFraction), strconv.Itoa(e.Racks), strconv.Itoa(e.Cores),
			f(e.EnergyJ), f(e.WorkCoreSec), f(e.PeakPowerW), f(e.MeanPowerW),
			strconv.Itoa(e.Submitted), strconv.Itoa(e.Launched),
			strconv.Itoa(e.Completed), strconv.Itoa(e.Killed),
			strconv.Itoa(e.Rescales), f(e.MeanWaitSec), f(e.MeanBSLD),
			f(e.NormEnergy), f(e.NormWork), f(e.NormLaunched),
			strconv.Itoa(e.PlanOffNodes), f(e.ElapsedMS), e.Error,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fingerprint hashes the sweep's aggregated metrics — everything except
// the timing fields, which legitimately vary run to run. Two sweeps of
// the same grid must fingerprint identically at any worker count; the
// sweep benchmark and the determinism tests rely on this.
func (t Table) Fingerprint() string {
	rows := make([]row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = exportRow(r)
		rows[i].ElapsedMS = 0
	}
	// Rows are already in grid order, but guard against callers that
	// assembled a table by hand.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	b, err := json.Marshal(rows)
	if err != nil {
		// row marshaling cannot fail on these field types
		panic(fmt.Sprintf("experiment: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
