package trace

import (
	"math"
	"os"

	"repro/internal/job"
)

// SWFSource turns an SWF trace file plus a transform chain into a
// workload source: the file is scanned lazily and each record flows
// through window extraction, arrival-rate rescaling, cluster-size
// rescaling and filtering without the trace ever being materialized.
// replay.Scenario carries one of these to replay real Parallel Workloads
// Archive traces; every scenario cell opens its own independent stream,
// so sweep workers never share reader state.
type SWFSource struct {
	// Path is the SWF trace file.
	Path string
	// WindowStart/WindowEnd extract the submit-time window
	// [WindowStart, WindowEnd) and re-base it to t=0; both zero means
	// the whole trace, and WindowEnd zero with WindowStart set means
	// "from WindowStart to the end of the trace". Requires a
	// submit-sorted trace (the archive convention) — scanning stops at
	// the window end.
	WindowStart, WindowEnd int64
	// TimeScale multiplies submit times; 0 or 1 leaves arrivals
	// unchanged, 0.5 doubles the submission pressure. Negative values
	// are an error, not a no-op.
	TimeScale float64
	// CoresFrom/CoresTo rescale job widths from a CoresFrom-core
	// machine onto a CoresTo-core one, preserving each job's machine
	// fraction. Both zero (or equal) means no rescaling; setting only
	// one, or a non-positive size, is an error.
	CoresFrom, CoresTo int
	// MaxJobs, when positive, truncates the stream after that many jobs.
	MaxJobs int
	// Keep, when set, drops jobs it returns false for.
	Keep func(*job.Job) bool
}

// transforms wires the configured chain around a raw record stream.
// Configured-but-invalid values (negative scales, zero machine sizes)
// reach their transform and surface as errors rather than silently
// replaying the trace untransformed.
func (s SWFSource) transforms(src Stream) Stream {
	if s.WindowStart != 0 || s.WindowEnd != 0 {
		end := s.WindowEnd
		if end == 0 {
			end = math.MaxInt64 // open-ended: from WindowStart to EOF
		}
		src = Window(src, s.WindowStart, end)
	}
	if s.TimeScale != 0 && s.TimeScale != 1 {
		src = ScaleTime(src, s.TimeScale)
	}
	if (s.CoresFrom != 0 || s.CoresTo != 0) && s.CoresFrom != s.CoresTo {
		src = ScaleCores(src, s.CoresFrom, s.CoresTo)
	}
	if s.Keep != nil {
		src = Filter(src, s.Keep)
	}
	if s.MaxJobs > 0 {
		src = Limit(src, s.MaxJobs)
	}
	return src
}

// FileStream is an open SWFSource: a Stream plus the Close releasing the
// underlying file. Callers must Close it when done (end of stream does
// not close the file).
type FileStream struct {
	f   *os.File
	src Stream
}

// Next implements Stream.
func (fs *FileStream) Next() (*job.Job, error) { return fs.src.Next() }

// Close releases the underlying file.
func (fs *FileStream) Close() error { return fs.f.Close() }

// Open opens the trace and returns the transformed record stream.
func (s SWFSource) Open() (*FileStream, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	return &FileStream{f: f, src: s.transforms(NewScanner(f))}, nil
}

// Load materializes the transformed trace, sorted by (submit, id) — the
// convenience path for workloads that fit in memory.
func (s SWFSource) Load() ([]*job.Job, error) {
	fs, err := s.Open()
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	jobs, err := Collect(fs)
	if err != nil {
		return nil, err
	}
	SortBySubmit(jobs)
	return jobs, nil
}
