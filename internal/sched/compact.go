package sched

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/job"
)

// AllocateCompact finds cores for a job while minimizing the number of
// chassis the allocation spans — the network-topology-aware resource
// selection Section IV-A lists among the RJMS's allocation criteria
// (jobs packed into few chassis share first-level switches). The greedy
// strategy fills the chassis with the most eligible free cores first,
// breaking ties by chassis index for determinism. Returns nil when the
// request cannot be satisfied.
func AllocateCompact(c *cluster.Cluster, cores int, eligible func(cluster.NodeID) bool) []job.Alloc {
	if cores <= 0 {
		return nil
	}
	ok := eligible
	if ok == nil {
		ok = func(cluster.NodeID) bool { return true }
	}
	topo := c.Topology()

	type chassisFree struct {
		idx  int
		free int
	}
	freeBy := make([]chassisFree, topo.Chassis())
	for i := range freeBy {
		freeBy[i].idx = i
	}
	total := 0
	c.ForEach(func(n cluster.NodeInfo) bool {
		if n.State == cluster.StateOff || !ok(n.ID) {
			return true
		}
		f := c.FreeCores(n.ID)
		if f > 0 {
			freeBy[topo.ChassisOf(n.ID)].free += f
			total += f
		}
		return true
	})
	if total < cores {
		return nil
	}
	sort.SliceStable(freeBy, func(i, j int) bool {
		if freeBy[i].free != freeBy[j].free {
			return freeBy[i].free > freeBy[j].free
		}
		return freeBy[i].idx < freeBy[j].idx
	})

	need := cores
	var allocs []job.Alloc
	for _, ch := range freeBy {
		if need <= 0 {
			break
		}
		if ch.free == 0 {
			continue
		}
		first, n := topo.ChassisNodes(ch.idx)
		// Busy-partial nodes first within the chassis, then idle.
		for _, wantState := range []cluster.NodeState{cluster.StateBusy, cluster.StateIdle} {
			for i := 0; i < n && need > 0; i++ {
				id := first + cluster.NodeID(i)
				if c.State(id) != wantState || !ok(id) {
					continue
				}
				free := c.FreeCores(id)
				if free <= 0 {
					continue
				}
				grab := free
				if grab > need {
					grab = need
				}
				allocs = append(allocs, job.Alloc{Node: id, Cores: grab})
				need -= grab
			}
		}
	}
	if need > 0 {
		return nil
	}
	return allocs
}

// ChassisSpan counts the distinct chassis an allocation touches.
func ChassisSpan(topo cluster.Topology, allocs []job.Alloc) int {
	seen := map[int]bool{}
	for _, a := range allocs {
		seen[topo.ChassisOf(a.Node)] = true
	}
	return len(seen)
}
