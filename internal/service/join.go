package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"
)

// FleetMember is the worker side of the fleet protocol: register with
// the gateway, then heartbeat inside the lease. Run it alongside a
// worker's Server — it owns no simulation state, only the lease
// keep-alive loop.
type FleetMember struct {
	// Gateway is the gateway base URL.
	Gateway string
	// Name is this worker's stable identity (rendezvous routing keys on
	// it).
	Name string
	// Advertise is this worker's base URL as the gateway should dial it.
	Advertise string
	// Token authenticates to the gateway when it requires bearer tokens
	// (fleet endpoints want an admin token).
	Token string
	// Interval overrides the heartbeat cadence; 0 derives a third of
	// the gateway's lease TTL.
	Interval time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Run registers and heartbeats until ctx ends, re-registering whenever
// the gateway forgets the lease (a restarted gateway answers heartbeats
// with 404 — the signal to join again). Transient transport failures
// are retried at the heartbeat cadence; Run only returns on ctx
// cancellation.
func (fm *FleetMember) Run(ctx context.Context) error {
	c := &Client{
		Base:       strings.TrimRight(fm.Gateway, "/"),
		Token:      fm.Token,
		HTTPClient: fm.HTTPClient,
	}
	interval := fm.Interval
	for {
		ttl, err := fm.register(ctx, c)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Gateway down or refusing — retry after a beat.
			wait := interval
			if wait <= 0 {
				wait = time.Second
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if interval <= 0 && ttl > 0 {
			interval = ttl / 3
		}
		if interval <= 0 {
			interval = 5 * time.Second
		}
		if err := fm.heartbeatLoop(ctx, c, interval); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// 404: the gateway lost the lease — loop back to register.
			continue
		}
	}
}

// register joins the fleet once, returning the granted lease TTL.
func (fm *FleetMember) register(ctx context.Context, c *Client) (time.Duration, error) {
	body, err := json.Marshal(joinRequest{Name: fm.Name, URL: fm.Advertise})
	if err != nil {
		return 0, err
	}
	var resp joinResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/join", bytes.NewReader(body), &resp); err != nil {
		return 0, err
	}
	ttl, err := time.ParseDuration(resp.LeaseTTL)
	if err != nil {
		return 0, nil // lease unknown; caller falls back to defaults
	}
	return ttl, nil
}

// heartbeatLoop renews the lease until ctx ends or the gateway answers
// 404 (lease lost — re-register).
func (fm *FleetMember) heartbeatLoop(ctx context.Context, c *Client, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		body, err := json.Marshal(joinRequest{Name: fm.Name})
		if err != nil {
			return err
		}
		err = c.do(ctx, http.MethodPost, "/v1/fleet/heartbeat", bytes.NewReader(body), nil)
		if err == nil {
			continue
		}
		var apiErr *Error
		if errors.As(err, &apiErr) && apiErr.Status == 404 {
			return err // lease lost: re-register
		}
		// Transport blips (and non-404 refusals) ride out on the next
		// tick — the lease survives a few missed beats.
	}
}
