// Package cluster models the hardware hierarchy of an HPC machine the way
// the paper's powercapping scheduler sees it: nodes grouped into chassis,
// chassis into racks, with per-level "power bonus" when a whole group is
// switched off together (Section III-B and Figure 2). It maintains node
// power states incrementally so that the total cluster draw — the quantity
// the online scheduling algorithm compares against the power cap — is O(1)
// to read and O(1) to update on any state transition.
package cluster

import "fmt"

// NodeID identifies a node; IDs are dense, 0..N-1, laid out in topology
// order: consecutive IDs share a chassis, consecutive chassis share a rack.
type NodeID int

// Topology describes the switch-off hierarchy of the machine.
type Topology struct {
	Racks           int // number of racks in the cluster
	ChassisPerRack  int // chassis housed by each rack
	NodesPerChassis int // compute nodes per chassis
	CoresPerNode    int // cores per compute node
}

// CurieTopology returns the Curie layout of Section VI-A: 5040 Bullx B510
// nodes = 56 racks x 5 chassis x 18 nodes, 16 cores per node (80640 cores).
func CurieTopology() Topology {
	return Topology{Racks: 56, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16}
}

// Validate reports whether every dimension is positive.
func (t Topology) Validate() error {
	if t.Racks <= 0 || t.ChassisPerRack <= 0 || t.NodesPerChassis <= 0 || t.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: invalid topology %+v (all dimensions must be positive)", t)
	}
	return nil
}

// Nodes returns the total node count.
func (t Topology) Nodes() int { return t.Racks * t.ChassisPerRack * t.NodesPerChassis }

// Chassis returns the total chassis count.
func (t Topology) Chassis() int { return t.Racks * t.ChassisPerRack }

// Cores returns the total core count.
func (t Topology) Cores() int { return t.Nodes() * t.CoresPerNode }

// NodesPerRack returns the node count of one rack.
func (t Topology) NodesPerRack() int { return t.ChassisPerRack * t.NodesPerChassis }

// ChassisOf returns the chassis index (0..Chassis()-1) housing node id.
func (t Topology) ChassisOf(id NodeID) int { return int(id) / t.NodesPerChassis }

// RackOf returns the rack index (0..Racks-1) housing node id.
func (t Topology) RackOf(id NodeID) int { return int(id) / t.NodesPerRack() }

// ChassisNodes returns the ID range [first, first+NodesPerChassis) of the
// nodes in chassis c.
func (t Topology) ChassisNodes(c int) (first NodeID, n int) {
	return NodeID(c * t.NodesPerChassis), t.NodesPerChassis
}

// RackNodes returns the ID range of the nodes in rack r.
func (t Topology) RackNodes(r int) (first NodeID, n int) {
	return NodeID(r * t.NodesPerRack()), t.NodesPerRack()
}

// Overhead is the power drawn by the shared equipment of one hierarchy
// level while any of its children is powered, and eliminated when the whole
// group is switched off together. Figure 2 of the paper: a chassis'
// switches, fans and ports draw 248 W; a rack's fans and cold door draw
// 900 W.
type Overhead struct {
	ChassisWatts float64 // shared equipment per chassis
	RackWatts    float64 // shared equipment per rack
}

// CurieOverhead returns the Figure 2 constants.
func CurieOverhead() Overhead { return Overhead{ChassisWatts: 248, RackWatts: 900} }
