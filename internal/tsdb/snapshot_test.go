package tsdb

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSnapshotRestoreRoundtrip pins the archive contract: a restored
// run answers every query identically to the original, at every level,
// and later appends continue the cascade as if nothing happened.
func TestSnapshotRestoreRoundtrip(t *testing.T) {
	st := New(smallOpts())
	orig := st.Run("run1")
	appendRamp(t, orig, "power", 11, 10) // odd count: level-1 cascade mid-batch
	appendRamp(t, orig, "cap", 5, 10)

	snap := orig.Snapshot()
	// The snapshot must survive the same JSON round-trip the archive
	// envelope puts it through.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := decoded.Restore()
	if err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		series string
		res    int64
	}{{"power", 0}, {"power", 20}, {"power", 40}, {"cap", 0}, {"cap", 20}}
	for _, q := range queries {
		wantPts, wantPer, wantErr := orig.Query(q.series, 0, 0, q.res)
		gotPts, gotPer, gotErr := restored.Query(q.series, 0, 0, q.res)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s res=%d: err %v vs %v", q.series, q.res, wantErr, gotErr)
		}
		if gotPer != wantPer || !reflect.DeepEqual(gotPts, wantPts) {
			t.Errorf("%s res=%d: restored (%v, per=%d), original (%v, per=%d)",
				q.series, q.res, gotPts, gotPer, wantPts, wantPer)
		}
	}
	if !reflect.DeepEqual(restored.Series(), orig.Series()) {
		t.Errorf("series names = %v, want %v", restored.Series(), orig.Series())
	}

	// Continuing the cascade: the same appends to both runs must keep
	// them identical — pending batches and watermarks restored exactly.
	for i := 11; i < 16; i++ {
		if err := orig.Append("power", int64(i)*10, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := restored.Append("power", int64(i)*10, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range []int64{0, 20, 40} {
		wantPts, _, _ := orig.Query("power", 0, 0, res)
		gotPts, _, _ := restored.Query("power", 0, 0, res)
		if !reflect.DeepEqual(gotPts, wantPts) {
			t.Errorf("post-restore appends diverged at res=%d:\n got %v\nwant %v", res, gotPts, wantPts)
		}
	}

	// Out-of-order appends are still refused: the watermark survived.
	if err := restored.Append("power", 0, 1); err == nil {
		t.Error("restored run accepted an out-of-order append")
	}
}

// TestSnapshotIsolated pins that a snapshot shares no state with the
// live run: appends after the snapshot must not leak into it.
func TestSnapshotIsolated(t *testing.T) {
	st := New(smallOpts())
	r := st.Run("run1")
	appendRamp(t, r, "power", 4, 10)
	snap := r.Snapshot()
	before := len(snap.Series[0].Levels[0])

	appendRamp(t, r, "more", 4, 10)
	if err := r.Append("power", 100, 99); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 1 || len(snap.Series[0].Levels[0]) != before {
		t.Errorf("snapshot mutated by later appends: %+v", snap.Series)
	}
}

// TestSnapshotDropped pins that the per-run series-cap marker list
// survives the round trip (partial telemetry must stay labeled partial).
func TestSnapshotDropped(t *testing.T) {
	st := New(smallOpts()) // MaxSeriesPerRun: 3
	r := st.Run("run1")
	for _, name := range []string{"a", "b", "c"} {
		if err := r.Append(name, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Append("overflow", 0, 1); err == nil {
		t.Fatal("series cap did not refuse the 4th series")
	}
	restored, err := r.Snapshot().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Dropped(); !reflect.DeepEqual(got, []string{"overflow"}) {
		t.Errorf("restored Dropped() = %v, want [overflow]", got)
	}
}

// TestRestoreRejectsMalformed pins the hostile-input contract: decoded
// snapshots with impossible shapes error, never panic, never install.
func TestRestoreRejectsMalformed(t *testing.T) {
	valid := func() *Snapshot {
		st := New(smallOpts())
		r := st.Run("run1")
		appendRamp(t, r, "power", 4, 10)
		return r.Snapshot()
	}
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"nil snapshot", nil},
		{"unnamed series", func(s *Snapshot) { s.Series[0].Name = "" }},
		{"duplicate series", func(s *Snapshot) { s.Series = append(s.Series, s.Series[0]) }},
		{"too many levels", func(s *Snapshot) {
			s.Series[0].Levels = append(s.Series[0].Levels, nil, nil, nil, nil)
		}},
		{"too many pending", func(s *Snapshot) {
			s.Series[0].Pending = make([]Point, 10)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var snap *Snapshot
			if tc.mutate != nil {
				snap = valid()
				tc.mutate(snap)
			}
			if _, err := snap.Restore(); err == nil {
				t.Errorf("%s restored without error", tc.name)
			}
		})
	}
}

// TestStoreRestoreInstalls pins the store-level hook: a restored run is
// reachable through Lookup under its id.
func TestStoreRestoreInstalls(t *testing.T) {
	src := New(smallOpts())
	r := src.Run("orig")
	appendRamp(t, r, "power", 4, 10)

	dst := New(smallOpts())
	if _, err := dst.Restore("copied", r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := dst.Lookup("copied")
	if got == nil {
		t.Fatal("restored run not installed")
	}
	wantPts, _, _ := r.Query("power", 0, 0, 0)
	gotPts, _, _ := got.Query("power", 0, 0, 0)
	if !reflect.DeepEqual(gotPts, wantPts) {
		t.Errorf("installed run answers %v, want %v", gotPts, wantPts)
	}
}
