package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

// TestCurieProfileFigure4 checks every row of the Figure 4 table.
func TestCurieProfileFigure4(t *testing.T) {
	p := CurieProfile()
	if p.Down() != 14 {
		t.Errorf("Down = %v, want 14 W", p.Down())
	}
	if p.Idle() != 117 {
		t.Errorf("Idle = %v, want 117 W", p.Idle())
	}
	rows := map[dvfs.Freq]Watts{
		dvfs.F1200: 193, dvfs.F1400: 213, dvfs.F1600: 234, dvfs.F1800: 248,
		dvfs.F2000: 269, dvfs.F2200: 289, dvfs.F2400: 317, dvfs.F2700: 358,
	}
	for f, w := range rows {
		if got := p.Busy(f); got != w {
			t.Errorf("Busy(%v) = %v, want %v", f, got, w)
		}
	}
	if p.Max() != 358 {
		t.Errorf("Max = %v, want 358", p.Max())
	}
	if p.MinBusy() != 193 {
		t.Errorf("MinBusy = %v, want 193", p.MinBusy())
	}
	if p.Nominal() != dvfs.F2700 || p.MinFreq() != dvfs.F1200 {
		t.Errorf("freq range = [%v,%v]", p.MinFreq(), p.Nominal())
	}
}

func TestProfileInterpolationAndClamp(t *testing.T) {
	p := CurieProfile()
	// Between 2.4 (317) and 2.7 (358): 2.55 GHz midpoint -> 337.5.
	if got := p.Busy(2550); math.Abs(float64(got)-337.5) > 1e-9 {
		t.Errorf("Busy(2.55 GHz) = %v, want 337.5", got)
	}
	if got := p.Busy(800); got != 193 {
		t.Errorf("Busy below range = %v, want clamp to 193", got)
	}
	if got := p.Busy(4000); got != 358 {
		t.Errorf("Busy above range = %v, want clamp to 358", got)
	}
	if got := p.Busy(0); got != 358 {
		t.Errorf("Busy(0=nominal) = %v, want 358", got)
	}
}

func TestProfileBusyMonotone(t *testing.T) {
	p := CurieProfile()
	f := func(a, b uint16) bool {
		fa, fb := dvfs.Freq(a%3000+100), dvfs.Freq(b%3000+100)
		if fa > fb {
			fa, fb = fb, fa
		}
		return p.Busy(fa) <= p.Busy(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewProfileRejects(t *testing.T) {
	freqs := map[dvfs.Freq]Watts{dvfs.F2700: 358}
	if _, err := NewProfile(14, 117, nil); err == nil {
		t.Error("empty freq table accepted")
	}
	if _, err := NewProfile(-1, 117, freqs); err == nil {
		t.Error("negative down accepted")
	}
	if _, err := NewProfile(200, 117, freqs); err == nil {
		t.Error("idle < down accepted")
	}
	if _, err := NewProfile(14, 117, map[dvfs.Freq]Watts{dvfs.F1200: 300, dvfs.F2700: 200}); err == nil {
		t.Error("non-monotone draw accepted")
	}
	if _, err := NewProfile(14, 117, map[dvfs.Freq]Watts{-1: 300}); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := NewProfile(14, 117, map[dvfs.Freq]Watts{dvfs.F1200: 50}); err == nil {
		t.Error("busy draw below idle accepted")
	}
}

func TestProfileRhoMatchesPaper(t *testing.T) {
	p := CurieProfile()
	got := p.Rho(1.63, dvfs.F1200)
	if math.Abs(got-(-0.174)) > 0.006 {
		t.Errorf("Rho(1.63) = %v, want about -0.174 (Figure 5 common value)", got)
	}
}

func TestCapBasics(t *testing.T) {
	if NoCap.IsSet() {
		t.Error("NoCap reports set")
	}
	if !NoCap.Allows(1e12) {
		t.Error("NoCap should allow everything")
	}
	c := CapWatts(1000)
	if !c.IsSet() || c.Watts() != 1000 {
		t.Fatalf("CapWatts broken: %+v", c)
	}
	if !c.Allows(1000) || c.Allows(1000.5) {
		t.Error("Allows boundary wrong")
	}
	if h := c.Headroom(400); h != 600 {
		t.Errorf("Headroom = %v, want 600", h)
	}
	if h := NoCap.Headroom(400); !math.IsInf(float64(h), 1) {
		t.Errorf("NoCap headroom = %v, want +Inf", h)
	}
	if CapWatts(-5).Watts() != 0 {
		t.Error("negative cap should clamp to 0")
	}
}

func TestCapFraction(t *testing.T) {
	c := CapFraction(0.4, 1000)
	if c.Watts() != 400 {
		t.Errorf("CapFraction(0.4, 1000) = %v, want 400", c.Watts())
	}
	if f := c.Fraction(1000); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("Fraction = %v, want 0.4", f)
	}
	if f := NoCap.Fraction(1000); !math.IsInf(f, 1) {
		t.Errorf("NoCap fraction = %v", f)
	}
	if f := CapWatts(10).Fraction(0); f != 0 {
		t.Errorf("Fraction with max=0 = %v, want 0", f)
	}
	if CapFraction(-1, 1000).Watts() != 0 {
		t.Error("negative lambda should clamp to 0")
	}
}

func TestCapString(t *testing.T) {
	if got := NoCap.String(); got != "uncapped" {
		t.Errorf("NoCap.String() = %q", got)
	}
	if got := CapWatts(1.8e6).String(); !strings.Contains(got, "MW") {
		t.Errorf("1.8 MW cap renders as %q", got)
	}
}

func TestWattsString(t *testing.T) {
	cases := map[Watts]string{
		14:      "14.0 W",
		1500:    "1.50 kW",
		1804320: "1.804 MW",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(w), got, want)
		}
	}
}

func TestJoulesString(t *testing.T) {
	for j, frag := range map[Joules]string{
		500:    "J",
		5e3:    "kJ",
		5e6:    "MJ",
		5.5e9:  "GJ",
		-5.5e9: "GJ",
	} {
		if got := j.String(); !strings.Contains(got, frag) {
			t.Errorf("%v.String() = %q, want unit %q", float64(j), got, frag)
		}
	}
}

func TestJoulesKWh(t *testing.T) {
	if got := Joules(3.6e6).KWh(); math.Abs(got-1) > 1e-12 {
		t.Errorf("3.6 MJ = %v kWh, want 1", got)
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy(100, 3600); got != 360000 {
		t.Errorf("Energy(100 W, 1 h) = %v, want 360000 J", got)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(0, 100)
	if err := m.Set(10, 200); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(20, 50); err != nil {
		t.Fatal(err)
	}
	// 100 W x 10 s + 200 W x 10 s = 3000 J; then 50 W x 10 s more.
	if got := m.EnergyAt(20); got != 3000 {
		t.Errorf("EnergyAt(20) = %v, want 3000", got)
	}
	if got := m.EnergyAt(30); got != 3500 {
		t.Errorf("EnergyAt(30) = %v, want 3500", got)
	}
	if m.Peak() != 200 {
		t.Errorf("Peak = %v, want 200", m.Peak())
	}
	if m.Current() != 50 {
		t.Errorf("Current = %v, want 50", m.Current())
	}
}

func TestMeterRejectsTimeTravel(t *testing.T) {
	m := NewMeter(100, 10)
	if err := m.Set(50, 20); err == nil {
		t.Error("out-of-order update accepted")
	}
}

func TestMeterZeroDurationUpdates(t *testing.T) {
	m := NewMeter(5, 10)
	if err := m.Set(5, 99); err != nil {
		t.Fatal(err)
	}
	if got := m.EnergyAt(5); got != 0 {
		t.Errorf("zero-span energy = %v, want 0", got)
	}
	if m.Current() != 99 {
		t.Errorf("Current = %v, want most recent value", m.Current())
	}
}

func TestMeterMean(t *testing.T) {
	m := NewMeter(0, 100)
	if err := m.Set(10, 300); err != nil {
		t.Fatal(err)
	}
	// (100x10 + 300x10)/20 = 200.
	if got := m.MeanAt(20); got != 200 {
		t.Errorf("MeanAt(20) = %v, want 200", got)
	}
	if got := m.MeanAt(0); got != 300 {
		t.Errorf("MeanAt at start = %v, want current draw", got)
	}
}

func TestMeterEnergyBeforeLastUpdate(t *testing.T) {
	m := NewMeter(0, 100)
	if err := m.Set(10, 200); err != nil {
		t.Fatal(err)
	}
	// Querying before the last update clamps to the update instant.
	if got := m.EnergyAt(5); got != 1000 {
		t.Errorf("EnergyAt(5) = %v, want clamp to 1000", got)
	}
}

func TestMeterZeroValueSet(t *testing.T) {
	var m Meter
	if err := m.Set(7, 42); err != nil {
		t.Fatal(err)
	}
	if got := m.EnergyAt(17); got != 420 {
		t.Errorf("zero-value meter energy = %v, want 420", got)
	}
}

// Property: meter total equals the hand-computed piecewise sum for random
// monotone schedules.
func TestMeterPiecewiseProperty(t *testing.T) {
	f := func(steps []uint8, watts []uint16) bool {
		m := NewMeter(0, 0)
		at := int64(0)
		last := Watts(0)
		var want Joules
		n := len(steps)
		if len(watts) < n {
			n = len(watts)
		}
		for i := 0; i < n; i++ {
			dt := int64(steps[i])
			w := Watts(watts[i])
			want += Energy(last, dt)
			at += dt
			if err := m.Set(at, w); err != nil {
				return false
			}
			last = w
		}
		return math.Abs(float64(m.EnergyAt(at)-want)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
