package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Client is the thin HTTP client of a running simd: it submits specs,
// polls for completion and streams sink-rendered reports — everything
// the CLIs' -remote mode needs, with no result decoding of its own (the
// server renders through the same sink pipeline a local run would).
type Client struct {
	// Base is the daemon address ("http://host:port", no trailing
	// slash required).
	Base string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait (default 150ms).
	PollInterval time.Duration
	// Token, when non-empty, is sent as a bearer token on every request
	// (daemons started with -tokens-file require one).
	Token string
}

// NewClient builds a client for a daemon base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeErr(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func decodeErr(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err != nil || e.Error == "" {
		return &Error{Status: resp.StatusCode, Msg: fmt.Sprintf("HTTP %s", resp.Status)}
	}
	return &Error{Status: resp.StatusCode, Msg: e.Error}
}

// Submit posts a spec and returns the (possibly deduped) run.
func (c *Client) Submit(ctx context.Context, spec sim.RunSpec) (RunView, bool, error) {
	var buf bytes.Buffer
	if err := spec.EncodeJSON(&buf); err != nil {
		return RunView{}, false, err
	}
	var resp submitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/runs", &buf, &resp); err != nil {
		return RunView{}, false, err
	}
	return resp.Run, resp.CacheHit, nil
}

// Get fetches one run's status (without the report payload).
func (c *Client) Get(ctx context.Context, id string) (RunView, error) {
	var v RunView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"?report=0", nil, &v)
	return v, err
}

// List fetches one page of the daemon's runs listing. The filter's
// Cursor resumes where a previous page's NextCursor left off.
func (c *Client) List(ctx context.Context, f ListFilter) ([]RunView, string, error) {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("state", f.State)
	set("hash", f.HashPrefix)
	set("policy", f.Policy)
	set("kind", f.Kind)
	set("name", f.Name)
	set("tenant", f.Tenant)
	if !f.Since.IsZero() {
		q.Set("since", f.Since.Format(time.RFC3339))
	}
	if !f.Until.IsZero() {
		q.Set("until", f.Until.Format(time.RFC3339))
	}
	set("cursor", f.Cursor)
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/v1/runs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp listResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, "", err
	}
	return resp.Runs, resp.NextCursor, nil
}

// SeriesQuery parameterizes a Series call; the zero value asks for the
// full raw series. Times are simulated seconds, Res the coarsest
// acceptable seconds-per-point.
type SeriesQuery struct {
	From int64
	To   int64
	Res  int64
}

// Series fetches one metric's points from a run's telemetry
// (/v1/runs/{id}/series). An empty metric name enumerates the run's
// recorded metrics instead of returning points.
func (c *Client) Series(ctx context.Context, id, metric string, sq SeriesQuery) (SeriesResponse, error) {
	q := url.Values{}
	if metric != "" {
		q.Set("metric", metric)
	}
	if sq.From != 0 {
		q.Set("from", strconv.FormatInt(sq.From, 10))
	}
	if sq.To != 0 {
		q.Set("to", strconv.FormatInt(sq.To, 10))
	}
	if sq.Res != 0 {
		q.Set("res", strconv.FormatInt(sq.Res, 10))
	}
	path := "/v1/runs/" + id + "/series"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp SeriesResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Stats fetches the daemon's /v1/stats counters (the fleet gateway
// aggregates member stats through this).
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Cancel cancels a run.
func (c *Client) Cancel(ctx context.Context, id string) (RunView, error) {
	var v RunView
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, &v)
	return v, err
}

// Wait polls until the run is terminal, invoking onChange (when
// non-nil) whenever the observed cell progress advances.
func (c *Client) Wait(ctx context.Context, id string, onChange func(RunView)) (RunView, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 150 * time.Millisecond
	}
	lastDone := -1
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return v, err
		}
		if onChange != nil && v.CellsDone != lastDone {
			lastDone = v.CellsDone
			onChange(v)
		}
		if v.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Export names one report rendering RunAndRender writes to a file.
type Export struct {
	// Path is the destination file; empty exports are skipped.
	Path string
	// Format is a sink name (json|csv|ascii).
	Format string
	// Label names the artifact in the confirmation line.
	Label string
}

// RunAndRender is the whole -remote flow the CLIs share: submit the
// spec, narrate the dedupe verdict and cell progress to out, wait for
// completion, stream the daemon's ASCII rendering, then write each
// export through the daemon's sink pipeline. Every result byte is
// rendered server-side, so remote output matches a local run of the
// same spec.
func (c *Client) RunAndRender(ctx context.Context, spec sim.RunSpec, opt sim.SinkOptions, out io.Writer, exports ...Export) error {
	v, hit, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "submitted %s run %s to %s (spec %.12s)\n", v.Mode, v.ID, c.Base, v.SpecHash)
	if hit {
		fmt.Fprintf(out, "deduped into existing %s run (cache hit #%d)\n", v.State, v.CacheHits)
	}
	v, err = c.Wait(ctx, v.ID, func(rv RunView) {
		if rv.CellsTotal > 1 {
			fmt.Fprintf(out, "  [%d/%d] cells finished\n", rv.CellsDone, rv.CellsTotal)
		}
	})
	if err != nil {
		return err
	}
	if v.State != StateDone {
		return fmt.Errorf("run %s %s: %s", v.ID, v.State, v.Error)
	}
	fmt.Fprintln(out)
	if err := c.WriteReport(ctx, v.ID, "ascii", opt, out); err != nil {
		return err
	}
	for _, exp := range exports {
		if exp.Path == "" {
			continue
		}
		if err := c.writeReportFile(ctx, v.ID, exp, opt); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s written to %s\n", exp.Label, exp.Path)
	}
	return nil
}

func (c *Client) writeReportFile(ctx context.Context, id string, exp Export, opt sim.SinkOptions) error {
	f, err := os.Create(exp.Path)
	if err != nil {
		return err
	}
	if err := c.WriteReport(ctx, id, exp.Format, opt, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteReport streams the run's report in the named sink format into w
// — the remote counterpart of sim.Export on a local report.
func (c *Client) WriteReport(ctx context.Context, id, format string, opt sim.SinkOptions, w io.Writer) error {
	path := fmt.Sprintf("/v1/runs/%s/report?format=%s&width=%d&height=%d", id, format, opt.Width, opt.Height)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeErr(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
